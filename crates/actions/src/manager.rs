//! The action manager: begin/commit/abort and two-phase commit.

use crate::action::{ActionId, ActionKind, ActionStatus};
use crate::arena::{UndoApplier, UndoArena};
use crate::error::TxError;
use crate::lock::{Ancestry, LockKey, LockManager, LockMode};
use crate::participant::Participant;
use groupview_obs::{Counter as ObsCounter, Phase, Registry};
use groupview_sim::{NodeId, Sim};
use groupview_store::{Stores, TxToken};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

type Undo = Box<dyn FnOnce()>;

/// One transaction's explicit record (the hig-proto shape): its lifecycle
/// state, the `LockKey → LockMode` map of everything it holds, and the
/// undo-log arena that replaced the per-op boxed undo closures.
struct Tx {
    kind: ActionKind,
    status: ActionStatus,
    /// Structural parent (for nested *and* nested-top-level actions).
    parent: Option<ActionId>,
    /// The node coordinating this action's commit.
    client_node: NodeId,
    /// The transaction's own view of its locks, maintained alongside the
    /// lock table: grants and upgrades land here, nested commit merges the
    /// child's map into the parent's (strongest mode wins).
    lock_map: HashMap<LockKey, LockMode>,
    /// Object-state undo log: one first-write snapshot per touched object
    /// plus the applied op ids (see [`UndoArena`]).
    arena: UndoArena,
    /// Generic compensation closures (binding decrements and the like);
    /// these still run LIFO, before the arena replays.
    undos: Vec<Undo>,
    participants: Vec<Box<dyn Participant>>,
    children: Vec<ActionId>,
}

impl fmt::Debug for Tx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tx")
            .field("kind", &self.kind)
            .field("status", &self.status)
            .field("parent", &self.parent)
            .field("locks", &self.lock_map.len())
            .field("undo_objects", &self.arena.object_count())
            .field("undos", &self.undos.len())
            .field("participants", &self.participants.len())
            .finish()
    }
}

/// Aggregate statistics over all actions of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Actions begun (all kinds).
    pub started: u64,
    /// Actions committed (all kinds).
    pub committed: u64,
    /// Actions aborted (all kinds).
    pub aborted: u64,
    /// Lock requests refused.
    pub lock_refusals: u64,
    /// Top-level commits that failed in phase 1.
    pub prepare_failures: u64,
    /// Committed *transactions* that wrote two or more distinct objects
    /// (the multi-object slice of `committed`).
    pub multi_committed: u64,
    /// Aborted transactions that had written two or more distinct objects.
    pub multi_aborted: u64,
}

struct TxInner {
    sim: Sim,
    next_id: u64,
    actions: HashMap<ActionId, Tx>,
    lock_parents: HashMap<ActionId, Option<ActionId>>,
    locks: LockManager,
    /// The coordinator's durable decision record: `token → committed?`.
    /// Store recovery consults this to resolve in-doubt transactions.
    decisions: HashMap<TxToken, bool>,
    stats: TxStats,
    /// Observability registry (disabled by default: every recording call is
    /// an inlined no-op, so unobserved runs pay nothing).
    obs: Registry,
    /// Replays undo-arena entries on abort (installed by the replication
    /// layer, which owns the replica registry).
    applier: Option<Rc<dyn UndoApplier>>,
}

struct AncestryView<'a> {
    map: &'a HashMap<ActionId, Option<ActionId>>,
}

impl Ancestry for AncestryView<'_> {
    fn lock_parent(&self, a: ActionId) -> Option<ActionId> {
        self.map.get(&a).copied().flatten()
    }
}

/// The atomic-action service.
///
/// One `TxSystem` manages every action in the simulated world — it plays the
/// role of Arjuna's atomic action module on each node, with bookkeeping
/// centralised because the simulation is single-threaded. Message and
/// stable-storage costs are still charged where a distributed implementation
/// would pay them (participant RPCs, decision-record forces).
///
/// See the [crate documentation](crate) for an example.
#[derive(Clone)]
pub struct TxSystem {
    inner: Rc<RefCell<TxInner>>,
    stores: Stores,
}

impl fmt::Debug for TxSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TxSystem")
            .field("actions", &inner.actions.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl TxSystem {
    /// Creates the action service for a world.
    pub fn new(sim: &Sim, stores: &Stores) -> TxSystem {
        TxSystem {
            inner: Rc::new(RefCell::new(TxInner {
                sim: sim.clone(),
                next_id: 1,
                actions: HashMap::new(),
                lock_parents: HashMap::new(),
                locks: LockManager::new(),
                decisions: HashMap::new(),
                stats: TxStats::default(),
                obs: Registry::new(),
                applier: None,
            })),
            stores: stores.clone(),
        }
    }

    /// The store registry this service commits against.
    pub fn stores(&self) -> &Stores {
        &self.stores
    }

    /// Share an observability registry: lock/prepare/commit/undo spans and
    /// counters are recorded into it (when it is enabled).
    pub fn set_observer(&self, obs: &Registry) {
        self.inner.borrow_mut().obs = obs.clone();
    }

    /// The observability registry currently in use (disabled by default).
    pub fn observer(&self) -> Registry {
        self.inner.borrow().obs.clone()
    }

    /// Installs the undo-arena applier: the replication layer's hook that
    /// restores object snapshots when a transaction aborts.
    pub fn set_undo_applier(&self, applier: Rc<dyn UndoApplier>) {
        self.inner.borrow_mut().applier = Some(applier);
    }

    // ----- lifecycle ---------------------------------------------------

    /// Begins a top-level action coordinated by `client_node`.
    pub fn begin_top(&self, client_node: NodeId) -> ActionId {
        self.begin(ActionKind::TopLevel, None, client_node)
    }

    /// Begins an action nested in `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an active action.
    pub fn begin_nested(&self, parent: ActionId) -> ActionId {
        let node = {
            let inner = self.inner.borrow();
            let rec = inner
                .actions
                .get(&parent)
                .unwrap_or_else(|| panic!("begin_nested: unknown parent {parent}"));
            assert_eq!(
                rec.status,
                ActionStatus::Active,
                "begin_nested: parent {parent} is not active"
            );
            rec.client_node
        };
        self.begin(ActionKind::Nested, Some(parent), node)
    }

    /// Begins a *nested top-level* action from within `enclosing`
    /// (paper Figure 8): it commits independently of `enclosing`.
    ///
    /// # Panics
    ///
    /// Panics if `enclosing` is not an active action.
    pub fn begin_nested_top(&self, enclosing: ActionId) -> ActionId {
        let node = {
            let inner = self.inner.borrow();
            let rec = inner
                .actions
                .get(&enclosing)
                .unwrap_or_else(|| panic!("begin_nested_top: unknown action {enclosing}"));
            assert_eq!(
                rec.status,
                ActionStatus::Active,
                "begin_nested_top: enclosing {enclosing} is not active"
            );
            rec.client_node
        };
        self.begin(ActionKind::NestedTopLevel, Some(enclosing), node)
    }

    fn begin(&self, kind: ActionKind, parent: Option<ActionId>, node: NodeId) -> ActionId {
        let mut inner = self.inner.borrow_mut();
        let id = ActionId::from_raw(inner.next_id);
        inner.next_id += 1;
        // Lock ancestry flows only through Nested links.
        let lock_parent = match kind {
            ActionKind::Nested => parent,
            ActionKind::TopLevel | ActionKind::NestedTopLevel => None,
        };
        inner.lock_parents.insert(id, lock_parent);
        if let Some(p) = parent {
            if let Some(prec) = inner.actions.get_mut(&p) {
                prec.children.push(id);
            }
        }
        inner.actions.insert(
            id,
            Tx {
                kind,
                status: ActionStatus::Active,
                parent,
                client_node: node,
                lock_map: HashMap::new(),
                arena: UndoArena::new(),
                undos: Vec::new(),
                participants: Vec::new(),
                children: Vec::new(),
            },
        );
        inner.stats.started += 1;
        id
    }

    // ----- per-action operations ----------------------------------------

    /// Acquires (or upgrades to) `mode` on `key` on behalf of `action`.
    ///
    /// # Errors
    ///
    /// [`TxError::LockRefused`] on conflict with an unrelated action,
    /// [`TxError::NotActive`] if the action cannot lock anymore.
    pub fn lock(&self, action: ActionId, key: LockKey, mode: LockMode) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.is_active(action) {
            return Err(TxError::NotActive(action));
        }
        let TxInner {
            locks,
            lock_parents,
            actions,
            stats,
            sim,
            obs,
            ..
        } = &mut *inner;
        let view = AncestryView { map: lock_parents };
        let now = sim.now().as_micros();
        match locks.acquire(&view, action, key, mode) {
            Ok(()) => {
                // Mirror the grant (or upgrade) into the transaction's own
                // lock map; the table stays the source of truth for
                // conflicts, the map for per-tx introspection.
                let rec = actions.get_mut(&action).expect("checked active");
                rec.lock_map
                    .entry(key)
                    .and_modify(|m| *m = (*m).max(mode))
                    .or_insert(mode);
                // Lock acquisition is instantaneous in this model; the span
                // still counts toward the phase breakdown.
                obs.add(ObsCounter::LocksAcquired, 1);
                obs.record_node_lock(rec.client_node.raw());
                obs.span(action.raw(), Phase::LockAcquire, now, now);
                Ok(())
            }
            Err(held) => {
                stats.lock_refusals += 1;
                obs.add(ObsCounter::LocksRefused, 1);
                Err(TxError::LockRefused {
                    key,
                    requested: mode,
                    held,
                })
            }
        }
    }

    /// Registers compensation to run if `action` (or an ancestor it merges
    /// into) aborts. Undos run in LIFO order.
    ///
    /// # Errors
    ///
    /// [`TxError::NotActive`] if the action is not active.
    pub fn push_undo(
        &self,
        action: ActionId,
        undo: impl FnOnce() + 'static,
    ) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.is_active(action) {
            return Err(TxError::NotActive(action));
        }
        inner
            .actions
            .get_mut(&action)
            .expect("checked active")
            .undos
            .push(Box::new(undo));
        Ok(())
    }

    /// Whether `action`'s undo arena already holds a first-write snapshot
    /// entry for object `key` (the invoke path snapshots each object once
    /// per transaction).
    pub fn undo_logged(&self, action: ActionId, key: u64) -> bool {
        self.inner
            .borrow()
            .actions
            .get(&action)
            .is_some_and(|r| r.arena.has_entry(key))
    }

    /// Appends a first-write snapshot entry for object `key` to `action`'s
    /// undo arena: the pinned `(node, incarnation)` replica set and the
    /// pre-write snapshot bytes.
    ///
    /// # Errors
    ///
    /// [`TxError::NotActive`] if the action is not active.
    pub fn log_undo_snapshot(
        &self,
        action: ActionId,
        key: u64,
        tag: u32,
        servers: impl IntoIterator<Item = (u32, u64)>,
        snapshot: &[u8],
    ) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.is_active(action) {
            return Err(TxError::NotActive(action));
        }
        inner
            .actions
            .get_mut(&action)
            .expect("checked active")
            .arena
            .push_entry(key, tag, servers, snapshot);
        Ok(())
    }

    /// Records an applied (possibly batch) operation id against object
    /// `key` in `action`'s undo arena — the steady-state write-path cost of
    /// undo logging (no snapshot, no boxing).
    ///
    /// # Errors
    ///
    /// [`TxError::NotActive`] if the action is not active.
    pub fn log_undo_op(&self, action: ActionId, key: u64, op_id: u64) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.is_active(action) {
            return Err(TxError::NotActive(action));
        }
        inner
            .actions
            .get_mut(&action)
            .expect("checked active")
            .arena
            .push_op(key, op_id);
        Ok(())
    }

    /// Registers a two-phase-commit participant for `action`'s (eventual)
    /// top-level commit.
    ///
    /// # Errors
    ///
    /// [`TxError::NotActive`] if the action is not active.
    pub fn add_participant(
        &self,
        action: ActionId,
        p: Box<dyn Participant>,
    ) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.is_active(action) {
            return Err(TxError::NotActive(action));
        }
        inner
            .actions
            .get_mut(&action)
            .expect("checked active")
            .participants
            .push(p);
        Ok(())
    }

    // ----- termination ---------------------------------------------------

    /// Commits `action`.
    ///
    /// * Nested actions merge their locks, undos, and participants into the
    ///   parent.
    /// * Top-level (and nested-top-level) actions run two-phase commit over
    ///   their participants, force the decision record, and release locks.
    ///
    /// Any still-active nested children are aborted first (they did not
    /// commit, so their effects must not survive). Active nested-top-level
    /// children are independent and untouched.
    ///
    /// # Errors
    ///
    /// [`TxError::NotActive`], [`TxError::CoordinatorDown`], or
    /// [`TxError::PrepareFailed`] (in which case the action has aborted).
    pub fn commit(&self, action: ActionId) -> Result<(), TxError> {
        // Abort stray active nested children first.
        let stray: Vec<ActionId> = {
            let inner = self.inner.borrow();
            match inner.actions.get(&action) {
                Some(rec) if rec.status == ActionStatus::Active => rec
                    .children
                    .iter()
                    .copied()
                    .filter(|c| {
                        inner.actions.get(c).is_some_and(|r| {
                            r.status == ActionStatus::Active && r.kind == ActionKind::Nested
                        })
                    })
                    .collect(),
                _ => return Err(TxError::NotActive(action)),
            }
        };
        for child in stray {
            self.abort(child);
        }

        let kind = {
            let inner = self.inner.borrow();
            inner.actions.get(&action).expect("checked above").kind
        };
        match kind {
            ActionKind::Nested => self.commit_nested(action),
            ActionKind::TopLevel | ActionKind::NestedTopLevel => self.commit_top(action),
        }
    }

    fn commit_nested(&self, action: ActionId) -> Result<(), TxError> {
        let mut inner = self.inner.borrow_mut();
        let parent = inner
            .actions
            .get(&action)
            .and_then(|r| r.parent)
            .expect("nested action has a parent");
        let rec = inner.actions.get_mut(&action).expect("exists");
        let undos = std::mem::take(&mut rec.undos);
        let participants = std::mem::take(&mut rec.participants);
        let arena = std::mem::take(&mut rec.arena);
        let lock_map = std::mem::take(&mut rec.lock_map);
        rec.status = ActionStatus::Committed;
        inner.locks.transfer(action, parent);
        let prec = inner
            .actions
            .get_mut(&parent)
            .expect("parent record exists");
        prec.undos.extend(undos);
        prec.participants.extend(participants);
        prec.arena.absorb(arena);
        for (key, mode) in lock_map {
            prec.lock_map
                .entry(key)
                .and_modify(|m| *m = (*m).max(mode))
                .or_insert(mode);
        }
        inner.stats.committed += 1;
        Ok(())
    }

    fn commit_top(&self, action: ActionId) -> Result<(), TxError> {
        let (sim, obs, node, mut participants) = {
            let mut inner = self.inner.borrow_mut();
            let rec = inner.actions.get_mut(&action).expect("checked active");
            let node = rec.client_node;
            let participants = std::mem::take(&mut rec.participants);
            (inner.sim.clone(), inner.obs.clone(), node, participants)
        };

        if !sim.is_up(node) {
            // The coordinator itself is dead; nothing can be decided now.
            // Put the participants back and abort the whole action.
            {
                let mut inner = self.inner.borrow_mut();
                if let Some(rec) = inner.actions.get_mut(&action) {
                    rec.participants = participants;
                }
            }
            self.abort(action);
            return Err(TxError::CoordinatorDown(node));
        }

        // Both commit phases run with trace attribution to this action, so
        // message loss during 2PC is causally tagged.
        sim.with_active_action(action.raw(), || -> Result<(), TxError> {
            // Phase 1: prepare everyone.
            let prepare_start = sim.now().as_micros();
            let mut failed: Option<NodeId> = None;
            for p in participants.iter_mut() {
                if !p.prepare() {
                    failed = Some(p.node());
                    break;
                }
                obs.add(ObsCounter::Prepares, 1);
            }
            if !participants.is_empty() {
                obs.span(
                    action.raw(),
                    Phase::Prepare,
                    prepare_start,
                    sim.now().as_micros(),
                );
            }
            if let Some(bad_node) = failed {
                for p in participants.iter_mut() {
                    p.abort();
                }
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.prepare_failures += 1;
                    inner.decisions.insert(TxToken::new(action.raw()), false);
                }
                self.abort(action);
                return Err(TxError::PrepareFailed { node: bad_node });
            }

            // Decision point: force the commit record at the coordinator.
            let commit_start = sim.now().as_micros();
            if !participants.is_empty() {
                sim.charge_stable_write();
            }
            {
                let mut inner = self.inner.borrow_mut();
                inner.decisions.insert(TxToken::new(action.raw()), true);
            }

            // Phase 2: best-effort commit; unreachable participants stay
            // in-doubt and are resolved by store recovery via `decision`.
            for p in participants.iter_mut() {
                let _ = p.commit();
            }
            if !participants.is_empty() {
                obs.span(
                    action.raw(),
                    Phase::Commit,
                    commit_start,
                    sim.now().as_micros(),
                );
            }
            obs.add(ObsCounter::Commits, 1);
            Ok(())
        })?;

        let mut inner = self.inner.borrow_mut();
        let rec = inner.actions.get_mut(&action).expect("exists");
        rec.status = ActionStatus::Committed;
        rec.undos.clear();
        let multi = rec.arena.object_count() >= 2;
        rec.arena.clear();
        inner.locks.release_all(action);
        inner.stats.committed += 1;
        if multi {
            inner.stats.multi_committed += 1;
        }
        Ok(())
    }

    /// Aborts `action`: undoes its (and its active nested children's)
    /// effects in LIFO order, tells registered participants to discard
    /// staged state, and releases all locks.
    ///
    /// Aborting a non-active action is a no-op (abort is idempotent).
    pub fn abort(&self, action: ActionId) {
        let mut undos: Vec<Undo> = Vec::new();
        let mut participants: Vec<Box<dyn Participant>> = Vec::new();
        let mut arenas: Vec<UndoArena> = Vec::new();
        let (sim, obs, applier, was_active) = {
            let mut inner = self.inner.borrow_mut();
            let was_active = inner.is_active(action);
            inner.collect_abort(action, &mut undos, &mut participants, &mut arenas);
            (
                inner.sim.clone(),
                inner.obs.clone(),
                inner.applier.clone(),
                was_active,
            )
        };
        let undo_start = sim.now().as_micros();
        let undo_count =
            undos.len() as u64 + arenas.iter().map(|a| a.op_count() as u64).sum::<u64>();
        // Run compensation outside the borrow: undo closures and arena
        // replay touch database/replica state through their own handles.
        // Attribute any messages they cause (participant abort RPCs) to
        // this action. Closures run first (LIFO), then each arena replays
        // newest-entry-first — snapshot restoration is idempotent, so only
        // the relative order of same-object entries matters.
        sim.with_active_action(action.raw(), || {
            for u in undos {
                u();
            }
            if let Some(applier) = applier {
                let mut scratch = Vec::new();
                for arena in &arenas {
                    arena.replay(applier.as_ref(), &mut scratch);
                }
            }
            for mut p in participants {
                p.abort();
            }
        });
        if was_active {
            obs.add(ObsCounter::Aborts, 1);
            obs.add(ObsCounter::UndoOps, undo_count);
            if undo_count > 0 {
                obs.span(action.raw(), Phase::Undo, undo_start, sim.now().as_micros());
            }
        }
    }

    // ----- introspection --------------------------------------------------

    /// The status of `action`, if known.
    pub fn status(&self, action: ActionId) -> Option<ActionStatus> {
        self.inner.borrow().actions.get(&action).map(|r| r.status)
    }

    /// Whether `action` is currently active.
    pub fn is_active(&self, action: ActionId) -> bool {
        self.status(action) == Some(ActionStatus::Active)
    }

    /// The kind of `action`, if known.
    pub fn kind(&self, action: ActionId) -> Option<ActionKind> {
        self.inner.borrow().actions.get(&action).map(|r| r.kind)
    }

    /// The structural parent of `action`, if any.
    pub fn parent(&self, action: ActionId) -> Option<ActionId> {
        self.inner
            .borrow()
            .actions
            .get(&action)
            .and_then(|r| r.parent)
    }

    /// The coordinator node of `action`.
    pub fn client_node(&self, action: ActionId) -> Option<NodeId> {
        self.inner
            .borrow()
            .actions
            .get(&action)
            .map(|r| r.client_node)
    }

    /// The stable transaction token of `action` (for store intent logs).
    pub fn token(action: ActionId) -> TxToken {
        TxToken::new(action.raw())
    }

    /// The coordinator's decision for a transaction token: `Some(true)` if
    /// committed, `Some(false)` if aborted, `None` if never decided
    /// (presumed abort).
    pub fn decision(&self, token: TxToken) -> Option<bool> {
        self.inner.borrow().decisions.get(&token).copied()
    }

    /// Whether the lock table is completely empty (quiescence invariant).
    pub fn locks_empty(&self) -> bool {
        self.inner.borrow().locks.is_empty()
    }

    /// The mode `action` holds on `key`, if any.
    pub fn lock_mode_of(&self, action: ActionId, key: LockKey) -> Option<LockMode> {
        self.inner.borrow().locks.mode_of(action, key)
    }

    /// Current holders of `key` (tests and diagnostics).
    pub fn lock_holders(&self, key: LockKey) -> Vec<(ActionId, LockMode)> {
        self.inner.borrow().locks.holders(key)
    }

    /// The transaction's own `LockKey → LockMode` map, sorted by key (the
    /// hig-proto-shaped per-tx view; the lock table remains the conflict
    /// authority).
    pub fn lock_map_of(&self, action: ActionId) -> Vec<(LockKey, LockMode)> {
        let inner = self.inner.borrow();
        let mut v: Vec<(LockKey, LockMode)> = inner
            .actions
            .get(&action)
            .map(|r| r.lock_map.iter().map(|(&k, &m)| (k, m)).collect())
            .unwrap_or_default();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Number of distinct objects with a first-write snapshot in `action`'s
    /// undo arena (= objects this transaction has written).
    pub fn undo_objects(&self, action: ActionId) -> usize {
        self.inner
            .borrow()
            .actions
            .get(&action)
            .map(|r| r.arena.object_count())
            .unwrap_or(0)
    }

    /// Aggregate statistics (lock refusals come from the lock manager).
    pub fn stats(&self) -> TxStats {
        let inner = self.inner.borrow();
        TxStats {
            lock_refusals: inner.locks.refusals(),
            ..inner.stats
        }
    }
}

impl TxInner {
    fn is_active(&self, action: ActionId) -> bool {
        self.actions
            .get(&action)
            .is_some_and(|r| r.status == ActionStatus::Active)
    }

    /// Depth-first collection of undo work for `action` and its active
    /// nested children; marks everything aborted and releases locks.
    fn collect_abort(
        &mut self,
        action: ActionId,
        undos: &mut Vec<Undo>,
        participants: &mut Vec<Box<dyn Participant>>,
        arenas: &mut Vec<UndoArena>,
    ) {
        if !self.is_active(action) {
            return;
        }
        let children = self
            .actions
            .get(&action)
            .map(|r| r.children.clone())
            .unwrap_or_default();
        // Children's effects are more recent: undo them first (but only
        // nested ones — nested-top-level children are independent).
        for child in children.into_iter().rev() {
            let is_nested = self
                .actions
                .get(&child)
                .is_some_and(|r| r.kind == ActionKind::Nested);
            if is_nested {
                self.collect_abort(child, undos, participants, arenas);
            }
        }
        let rec = self.actions.get_mut(&action).expect("checked active");
        rec.status = ActionStatus::Aborted;
        let mut own = std::mem::take(&mut rec.undos);
        own.reverse(); // LIFO
        undos.extend(own);
        participants.extend(std::mem::take(&mut rec.participants));
        let arena = std::mem::take(&mut rec.arena);
        if arena.object_count() >= 2 {
            self.stats.multi_aborted += 1;
        }
        if !arena.is_empty() {
            arenas.push(arena);
        }
        rec.lock_map.clear();
        self.locks.release_all(action);
        self.stats.aborted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::StoreWriteParticipant;
    use groupview_sim::SimConfig;
    use groupview_store::{ObjectState, TypeTag, Uid};
    use std::cell::RefCell as StdRefCell;
    use std::rc::Rc as StdRc;

    fn world() -> (Sim, Stores, TxSystem) {
        let sim = Sim::new(SimConfig::new(5).with_nodes(4));
        let stores = Stores::new(&sim);
        for n in sim.nodes() {
            stores.add_store(n);
        }
        let tx = TxSystem::new(&sim, &stores);
        (sim, stores, tx)
    }

    fn key(k: u64) -> LockKey {
        LockKey::new(1, k)
    }

    fn state(b: &[u8]) -> ObjectState {
        ObjectState::initial(TypeTag::new(1), b.to_vec())
    }

    #[test]
    fn top_level_lifecycle() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        assert!(tx.is_active(a));
        assert_eq!(tx.kind(a), Some(ActionKind::TopLevel));
        assert_eq!(tx.client_node(a), Some(NodeId::new(0)));
        tx.commit(a).unwrap();
        assert_eq!(tx.status(a), Some(ActionStatus::Committed));
        assert_eq!(tx.commit(a), Err(TxError::NotActive(a)));
        let s = tx.stats();
        assert_eq!((s.started, s.committed, s.aborted), (1, 1, 0));
    }

    #[test]
    fn locks_released_at_top_commit_only() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        let n = tx.begin_nested(a);
        tx.lock(n, key(1), LockMode::Read).unwrap();
        tx.commit(n).unwrap();
        // Lock inherited by parent, still blocking writers:
        let b = tx.begin_top(NodeId::new(1));
        assert!(matches!(
            tx.lock(b, key(1), LockMode::Write),
            Err(TxError::LockRefused { .. })
        ));
        tx.commit(a).unwrap();
        tx.lock(b, key(1), LockMode::Write).unwrap();
        tx.commit(b).unwrap();
        assert!(tx.locks_empty());
    }

    #[test]
    fn nested_abort_runs_undos_in_lifo_order() {
        let (_, _, tx) = world();
        let log = StdRc::new(StdRefCell::new(Vec::new()));
        let a = tx.begin_top(NodeId::new(0));
        let n = tx.begin_nested(a);
        for i in 0..3 {
            let log2 = log.clone();
            tx.push_undo(n, move || log2.borrow_mut().push(i)).unwrap();
        }
        tx.abort(n);
        assert_eq!(*log.borrow(), vec![2, 1, 0]);
        assert_eq!(tx.status(n), Some(ActionStatus::Aborted));
        // Parent unaffected.
        assert!(tx.is_active(a));
        tx.commit(a).unwrap();
    }

    #[test]
    fn parent_abort_undoes_committed_child_effects() {
        let (_, _, tx) = world();
        let hit = StdRc::new(StdRefCell::new(0));
        let a = tx.begin_top(NodeId::new(0));
        let n = tx.begin_nested(a);
        let hit2 = hit.clone();
        tx.push_undo(n, move || *hit2.borrow_mut() += 1).unwrap();
        tx.commit(n).unwrap();
        assert_eq!(*hit.borrow(), 0, "commit of child must not run undos");
        tx.abort(a);
        assert_eq!(*hit.borrow(), 1, "parent abort undoes child effects");
        assert!(tx.locks_empty());
    }

    #[test]
    fn commit_aborts_stray_active_nested_children() {
        let (_, _, tx) = world();
        let hit = StdRc::new(StdRefCell::new(0));
        let a = tx.begin_top(NodeId::new(0));
        let n = tx.begin_nested(a);
        let hit2 = hit.clone();
        tx.push_undo(n, move || *hit2.borrow_mut() += 1).unwrap();
        tx.commit(a).unwrap();
        assert_eq!(tx.status(n), Some(ActionStatus::Aborted));
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn nested_top_level_commits_independently() {
        let (sim, stores, tx) = world();
        let uid = Uid::from_raw(1);
        let a = tx.begin_top(NodeId::new(0));
        let ntl = tx.begin_nested_top(a);
        assert_eq!(tx.kind(ntl), Some(ActionKind::NestedTopLevel));
        assert_eq!(tx.parent(ntl), Some(a));
        // The NTL action writes durably through a store participant.
        tx.add_participant(
            ntl,
            Box::new(StoreWriteParticipant::new(
                &sim,
                &stores,
                NodeId::new(0),
                NodeId::new(1),
                TxSystem::token(ntl),
                vec![(uid, state(b"ntl"))],
            )),
        )
        .unwrap();
        tx.commit(ntl).unwrap();
        // Enclosing aborts afterwards; the NTL effect survives.
        tx.abort(a);
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"ntl");
        assert_eq!(tx.status(ntl), Some(ActionStatus::Committed));
    }

    #[test]
    fn ntl_locks_do_not_flow_to_enclosing() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        let ntl = tx.begin_nested_top(a);
        tx.lock(ntl, key(5), LockMode::Write).unwrap();
        // The enclosing action is unrelated for locking purposes:
        assert!(matches!(
            tx.lock(a, key(5), LockMode::Read),
            Err(TxError::LockRefused { .. })
        ));
        tx.commit(ntl).unwrap();
        // After NTL commit the lock is gone entirely (not inherited).
        tx.lock(a, key(5), LockMode::Write).unwrap();
        tx.commit(a).unwrap();
        assert!(tx.locks_empty());
    }

    #[test]
    fn two_phase_commit_installs_on_all_stores() {
        let (sim, stores, tx) = world();
        let uid = Uid::from_raw(7);
        let a = tx.begin_top(NodeId::new(0));
        for target in [NodeId::new(1), NodeId::new(2)] {
            tx.add_participant(
                a,
                Box::new(StoreWriteParticipant::new(
                    &sim,
                    &stores,
                    NodeId::new(0),
                    target,
                    TxSystem::token(a),
                    vec![(uid, state(b"v1"))],
                )),
            )
            .unwrap();
        }
        tx.commit(a).unwrap();
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"v1");
        assert_eq!(stores.read_local(NodeId::new(2), uid).unwrap().data, b"v1");
        assert_eq!(tx.decision(TxSystem::token(a)), Some(true));
    }

    #[test]
    fn prepare_failure_aborts_everything() {
        let (sim, stores, tx) = world();
        let uid = Uid::from_raw(8);
        stores
            .write_local(NodeId::new(1), uid, state(b"old"))
            .unwrap();
        sim.crash(NodeId::new(2));
        let a = tx.begin_top(NodeId::new(0));
        for target in [NodeId::new(1), NodeId::new(2)] {
            tx.add_participant(
                a,
                Box::new(StoreWriteParticipant::new(
                    &sim,
                    &stores,
                    NodeId::new(0),
                    target,
                    TxSystem::token(a),
                    vec![(uid, state(b"new"))],
                )),
            )
            .unwrap();
        }
        let err = tx.commit(a).unwrap_err();
        assert_eq!(
            err,
            TxError::PrepareFailed {
                node: NodeId::new(2)
            }
        );
        assert_eq!(tx.status(a), Some(ActionStatus::Aborted));
        // Nothing installed anywhere; node 1's intent log cleaned up.
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"old");
        assert!(stores
            .with(NodeId::new(1), |s| s.indoubt())
            .unwrap()
            .is_empty());
        assert_eq!(tx.decision(TxSystem::token(a)), Some(false));
        assert_eq!(tx.stats().prepare_failures, 1);
    }

    #[test]
    fn participant_crash_between_phases_resolved_by_decision_record() {
        let (sim, stores, tx) = world();
        let uid = Uid::from_raw(9);
        let victim = NodeId::new(1);
        let a = tx.begin_top(NodeId::new(0));
        tx.add_participant(
            a,
            Box::new(StoreWriteParticipant::new(
                &sim,
                &stores,
                NodeId::new(0),
                victim,
                TxSystem::token(a),
                vec![(uid, state(b"durable"))],
            )),
        )
        .unwrap();
        // Crash the participant right after it acknowledges prepare: the
        // prepare RPC involves 2 sends from the victim's perspective? No —
        // the victim only sends the prepare reply (1 send), then the commit
        // reply. Crash it after the prepare reply:
        sim.crash_after_sends(victim, 1);
        tx.commit(a).unwrap(); // decision = commit; phase 2 to victim fails
        assert!(!sim.is_up(victim));
        // Recovery: the store finds the in-doubt tx and asks the
        // coordinator's decision record.
        sim.recover(victim);
        let indoubt = stores.with(victim, |s| s.indoubt()).unwrap();
        assert_eq!(indoubt, vec![TxSystem::token(a)]);
        assert_eq!(tx.decision(TxSystem::token(a)), Some(true));
        stores.commit_local(victim, TxSystem::token(a)).unwrap();
        assert_eq!(stores.read_local(victim, uid).unwrap().data, b"durable");
    }

    #[test]
    fn coordinator_down_cannot_commit() {
        let (sim, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        tx.lock(a, key(3), LockMode::Write).unwrap();
        sim.crash(NodeId::new(0));
        assert_eq!(tx.commit(a), Err(TxError::CoordinatorDown(NodeId::new(0))));
        assert_eq!(tx.status(a), Some(ActionStatus::Aborted));
        assert!(tx.locks_empty());
    }

    #[test]
    fn operations_on_terminated_actions_fail_cleanly() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        tx.commit(a).unwrap();
        assert_eq!(
            tx.lock(a, key(1), LockMode::Read),
            Err(TxError::NotActive(a))
        );
        assert_eq!(tx.push_undo(a, || {}), Err(TxError::NotActive(a)));
        // Abort of a committed action is a no-op.
        tx.abort(a);
        assert_eq!(tx.status(a), Some(ActionStatus::Committed));
    }

    #[test]
    fn nested_chain_three_deep_inherits_to_root() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        let n1 = tx.begin_nested(a);
        let n2 = tx.begin_nested(n1);
        tx.lock(n2, key(4), LockMode::Write).unwrap();
        tx.commit(n2).unwrap();
        tx.commit(n1).unwrap();
        assert_eq!(tx.lock_mode_of(a, key(4)), Some(LockMode::Write));
        let b = tx.begin_top(NodeId::new(1));
        assert!(tx.lock(b, key(4), LockMode::Read).is_err());
        tx.commit(a).unwrap();
        tx.lock(b, key(4), LockMode::Read).unwrap();
        tx.commit(b).unwrap();
    }

    #[test]
    fn observer_records_lock_commit_and_abort_telemetry() {
        let (sim, stores, tx) = world();
        let obs = Registry::new();
        obs.set_enabled(true);
        tx.set_observer(&obs);
        let uid = Uid::from_raw(21);
        let a = tx.begin_top(NodeId::new(0));
        tx.lock(a, key(9), LockMode::Write).unwrap();
        tx.add_participant(
            a,
            Box::new(StoreWriteParticipant::new(
                &sim,
                &stores,
                NodeId::new(0),
                NodeId::new(1),
                TxSystem::token(a),
                vec![(uid, state(b"x"))],
            )),
        )
        .unwrap();
        tx.commit(a).unwrap();
        assert_eq!(obs.get(ObsCounter::LocksAcquired), 1);
        assert_eq!(obs.get(ObsCounter::Prepares), 1);
        assert_eq!(obs.get(ObsCounter::Commits), 1);
        let snap = obs.snapshot();
        assert_eq!(snap.phase(Phase::LockAcquire).count(), 1);
        assert_eq!(snap.phase(Phase::Prepare).count(), 1);
        assert!(
            snap.phase(Phase::Prepare).total_us() > 0,
            "prepare RPCs advance virtual time"
        );
        assert_eq!(snap.phase(Phase::Commit).count(), 1);

        let b = tx.begin_top(NodeId::new(0));
        tx.push_undo(b, || {}).unwrap();
        tx.abort(b);
        assert_eq!(obs.get(ObsCounter::Aborts), 1);
        assert_eq!(obs.get(ObsCounter::UndoOps), 1);
        assert_eq!(tx.observer().get(ObsCounter::Commits), 1);
    }

    #[test]
    fn abort_statistics_count_whole_subtree() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        let n1 = tx.begin_nested(a);
        let _n2 = tx.begin_nested(n1);
        tx.abort(a);
        let s = tx.stats();
        assert_eq!(s.aborted, 3, "root + two nested children");
    }

    #[test]
    fn lock_map_mirrors_grants_upgrades_and_nested_merges() {
        let (_, _, tx) = world();
        let a = tx.begin_top(NodeId::new(0));
        tx.lock(a, key(1), LockMode::Read).unwrap();
        tx.lock(a, key(1), LockMode::Write).unwrap(); // upgrade
        tx.lock(a, key(2), LockMode::Read).unwrap();
        assert_eq!(
            tx.lock_map_of(a),
            vec![(key(1), LockMode::Write), (key(2), LockMode::Read)]
        );
        // A nested child's map merges into the parent on commit, strongest
        // mode winning.
        let n = tx.begin_nested(a);
        tx.lock(n, key(2), LockMode::Write).unwrap();
        tx.lock(n, key(3), LockMode::Read).unwrap();
        tx.commit(n).unwrap();
        assert_eq!(
            tx.lock_map_of(a),
            vec![
                (key(1), LockMode::Write),
                (key(2), LockMode::Write),
                (key(3), LockMode::Read),
            ]
        );
        // The map agrees with the lock table for every entry.
        for (k, m) in tx.lock_map_of(a) {
            assert_eq!(tx.lock_mode_of(a, k), Some(m));
        }
        tx.commit(a).unwrap();
        assert!(tx.locks_empty());
    }

    type UndoRecord = (u64, u32, Vec<(u32, u64)>, Vec<u64>, Vec<u8>);

    struct RecordingApplier {
        log: StdRefCell<Vec<UndoRecord>>,
    }

    impl crate::arena::UndoApplier for RecordingApplier {
        fn undo(&self, key: u64, tag: u32, servers: &[(u32, u64)], ops: &[u64], snap: &[u8]) {
            self.log
                .borrow_mut()
                .push((key, tag, servers.to_vec(), ops.to_vec(), snap.to_vec()));
        }
    }

    #[test]
    fn abort_replays_arena_entries_in_reverse_through_the_applier() {
        let (_, _, tx) = world();
        let applier = StdRc::new(RecordingApplier {
            log: StdRefCell::new(Vec::new()),
        });
        tx.set_undo_applier(applier.clone());
        let a = tx.begin_top(NodeId::new(0));
        tx.log_undo_snapshot(a, 10, 3, [(1, 1), (2, 1)], b"ten")
            .unwrap();
        tx.log_undo_op(a, 10, 100).unwrap();
        tx.log_undo_snapshot(a, 20, 3, [(1, 1)], b"twenty").unwrap();
        tx.log_undo_op(a, 20, 101).unwrap();
        tx.log_undo_op(a, 10, 102).unwrap();
        assert!(tx.undo_logged(a, 10) && tx.undo_logged(a, 20));
        assert!(!tx.undo_logged(a, 30));
        assert_eq!(tx.undo_objects(a), 2);
        tx.abort(a);
        let log = applier.log.borrow();
        assert_eq!(log.len(), 2, "one restore per touched object");
        assert_eq!(log[0].0, 20, "newest entry first");
        assert_eq!(log[0].4, b"twenty");
        assert_eq!(log[1].0, 10);
        assert_eq!(log[1].2, vec![(1, 1), (2, 1)]);
        assert_eq!(log[1].3, vec![100, 102], "all of object 10's op ids");
        let s = tx.stats();
        assert_eq!(s.multi_aborted, 1, "two objects written => multi abort");
    }

    #[test]
    fn commit_discards_the_arena_and_counts_multi_object_transactions() {
        let (_, _, tx) = world();
        let applier = StdRc::new(RecordingApplier {
            log: StdRefCell::new(Vec::new()),
        });
        tx.set_undo_applier(applier.clone());
        // Single-object transaction: committed but not multi.
        let a = tx.begin_top(NodeId::new(0));
        tx.log_undo_snapshot(a, 1, 1, [(1, 1)], b"one").unwrap();
        tx.commit(a).unwrap();
        // Two-object transaction: counted in the multi breakdown.
        let b = tx.begin_top(NodeId::new(0));
        tx.log_undo_snapshot(b, 1, 1, [(1, 1)], b"one").unwrap();
        tx.log_undo_snapshot(b, 2, 1, [(1, 1)], b"two").unwrap();
        tx.commit(b).unwrap();
        assert!(applier.log.borrow().is_empty(), "commits never replay");
        let s = tx.stats();
        assert_eq!((s.committed, s.multi_committed, s.multi_aborted), (2, 1, 0));
    }

    #[test]
    fn nested_commit_absorbs_the_child_arena_into_the_parent() {
        let (_, _, tx) = world();
        let applier = StdRc::new(RecordingApplier {
            log: StdRefCell::new(Vec::new()),
        });
        tx.set_undo_applier(applier.clone());
        let a = tx.begin_top(NodeId::new(0));
        tx.log_undo_snapshot(a, 1, 1, [(1, 1)], b"parent-1")
            .unwrap();
        let n = tx.begin_nested(a);
        tx.log_undo_snapshot(n, 1, 1, [(1, 1)], b"child-1").unwrap();
        tx.log_undo_snapshot(n, 2, 1, [(2, 1)], b"child-2").unwrap();
        tx.commit(n).unwrap();
        assert_eq!(tx.undo_objects(a), 3, "child entries absorbed");
        tx.abort(a);
        let log = applier.log.borrow();
        // Reverse order: child entries first, parent's older snapshot of
        // object 1 last (it wins).
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].0, 2);
        assert_eq!(log[1].4, b"child-1");
        assert_eq!(log[2].4, b"parent-1");
    }
}
