//! Two-phase-commit participants.

use groupview_sim::{NetError, NodeId, Sim};
use groupview_store::{ObjectState, Stores, TxToken, Uid};
use std::fmt;

/// Why a participant's prepare phase failed — the *source* of a store-write
/// failure, so commit-error taxonomies can tell a crashed/unreachable store
/// from a store that refused the write locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepareFault {
    /// The store node could not be reached (down, partitioned, or the
    /// message was lost).
    Net(NetError),
    /// The store was reachable but refused to stage the write.
    Refused(NodeId),
}

impl PrepareFault {
    /// Whether the fault was caused by a node/network failure (as opposed
    /// to a local refusal).
    pub fn is_failure_caused(&self) -> bool {
        matches!(self, PrepareFault::Net(_))
    }
}

impl fmt::Display for PrepareFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareFault::Net(e) => write!(f, "store unreachable: {e}"),
            PrepareFault::Refused(n) => write!(f, "store on {n} refused the write"),
        }
    }
}

/// A resource taking part in an action's two-phase commit.
///
/// The action manager drives participants through `prepare` (phase 1,
/// durable) and then `commit` or `abort` (phase 2). A participant whose node
/// crashes between the phases is left *in doubt*; its recovery consults the
/// coordinator's decision record ([`crate::TxSystem::decision`]).
pub trait Participant {
    /// The node this participant's durable state lives on.
    fn node(&self) -> NodeId;

    /// Phase 1: durably stage the participant's effects. Returns whether
    /// the participant is prepared; `false` vetoes the commit.
    fn prepare(&mut self) -> bool;

    /// Phase 2: make the staged effects permanent. Returns `false` when the
    /// participant was unreachable — the decision stands and recovery will
    /// finish the job.
    fn commit(&mut self) -> bool;

    /// Phase 2 alternative: discard staged effects (best effort; presumed
    /// abort makes lost messages harmless).
    fn abort(&mut self);
}

/// The standard participant: installs new object states into one node's
/// stable store.
///
/// Commit processing in the paper copies the state of a modified object "to
/// the object stores of all the nodes ∈ StA" (§3.2 case 2); the replication
/// layer creates one `StoreWriteParticipant` per store node. Prepare writes
/// the store's intent log; commit installs; both go over the simulated
/// network unless the store is on the coordinator's own node.
#[derive(Debug)]
pub struct StoreWriteParticipant {
    sim: Sim,
    stores: Stores,
    coordinator: NodeId,
    target: NodeId,
    token: TxToken,
    writes: Vec<(Uid, ObjectState)>,
}

impl StoreWriteParticipant {
    /// Creates a participant installing `writes` on `target`'s store, with
    /// two-phase-commit messages sent from `coordinator`.
    pub fn new(
        sim: &Sim,
        stores: &Stores,
        coordinator: NodeId,
        target: NodeId,
        token: TxToken,
        writes: Vec<(Uid, ObjectState)>,
    ) -> Self {
        StoreWriteParticipant {
            sim: sim.clone(),
            stores: stores.clone(),
            coordinator,
            target,
            token,
            writes,
        }
    }

    fn wire_size(&self) -> usize {
        self.writes
            .iter()
            .map(|(_, s)| s.wire_size())
            .sum::<usize>()
            + 24
    }

    fn is_local(&self) -> bool {
        self.coordinator == self.target
    }

    /// Phase 1 with an explained outcome: stages the writes like
    /// [`Participant::prepare`] but reports *why* a failure happened, so the
    /// caller can distinguish an unreachable store from a refused write.
    ///
    /// # Errors
    ///
    /// [`PrepareFault::Net`] when the store node could not be reached,
    /// [`PrepareFault::Refused`] when it rejected the staged write.
    pub fn try_prepare(&mut self) -> Result<(), PrepareFault> {
        let writes = self.writes.clone();
        let target = self.target;
        if self.is_local() {
            return self
                .stores
                .prepare_local(target, self.token, writes)
                .map_err(|_| PrepareFault::Refused(target));
        }
        let stores = self.stores.clone();
        let token = self.token;
        let bytes = self.wire_size();
        match self
            .sim
            .rpc(self.coordinator, self.target, bytes, 16, move || {
                stores.prepare_local(target, token, writes).is_ok()
            }) {
            Ok(true) => Ok(()),
            Ok(false) => Err(PrepareFault::Refused(target)),
            Err(e) => Err(PrepareFault::Net(e)),
        }
    }
}

impl Participant for StoreWriteParticipant {
    fn node(&self) -> NodeId {
        self.target
    }

    fn prepare(&mut self) -> bool {
        self.try_prepare().is_ok()
    }

    fn commit(&mut self) -> bool {
        if self.is_local() {
            return self.stores.commit_local(self.target, self.token).is_ok();
        }
        let stores = self.stores.clone();
        let target = self.target;
        let token = self.token;
        self.sim
            .rpc(self.coordinator, self.target, 24, 16, move || {
                stores.commit_local(target, token).is_ok()
            })
            .unwrap_or(false)
    }

    fn abort(&mut self) {
        if self.is_local() {
            let _ = self.stores.abort_local(self.target, self.token);
            return;
        }
        let stores = self.stores.clone();
        let target = self.target;
        let token = self.token;
        let _ = self
            .sim
            .rpc(self.coordinator, self.target, 24, 16, move || {
                let _ = stores.abort_local(target, token);
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;
    use groupview_store::{StoreError, TypeTag};

    fn world() -> (Sim, Stores) {
        let sim = Sim::new(SimConfig::new(4).with_nodes(3));
        let stores = Stores::new(&sim);
        stores.add_store(NodeId::new(0));
        stores.add_store(NodeId::new(1));
        (sim, stores)
    }

    fn state(b: &[u8]) -> ObjectState {
        ObjectState::initial(TypeTag::new(1), b.to_vec())
    }

    #[test]
    fn remote_prepare_commit_installs() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(1);
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(1),
            TxToken::new(5),
            vec![(uid, state(b"x"))],
        );
        assert!(p.prepare());
        assert_eq!(
            stores.read_local(NodeId::new(1), uid),
            Err(StoreError::NotFound(uid)),
            "prepared but not installed"
        );
        assert!(p.commit());
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"x");
        assert_eq!(p.node(), NodeId::new(1));
    }

    #[test]
    fn local_participant_skips_the_network() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(2);
        let before = sim.counters().delivered;
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(0),
            TxToken::new(6),
            vec![(uid, state(b"y"))],
        );
        assert!(p.prepare());
        assert!(p.commit());
        assert_eq!(
            sim.counters().delivered,
            before,
            "no messages for local store"
        );
        assert_eq!(stores.read_local(NodeId::new(0), uid).unwrap().data, b"y");
    }

    #[test]
    fn prepare_fails_when_target_down() {
        let (sim, stores) = world();
        sim.crash(NodeId::new(1));
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(1),
            TxToken::new(7),
            vec![(Uid::from_raw(3), state(b"z"))],
        );
        assert!(!p.prepare());
        let fault = p.try_prepare().expect_err("target is down");
        assert!(
            fault.is_failure_caused(),
            "a dead store is a failure: {fault}"
        );
        assert!(matches!(fault, PrepareFault::Net(_)));
    }

    #[test]
    fn try_prepare_reports_refusal_distinctly() {
        let (sim, stores) = world();
        // Node 2 has no store: the prepare is delivered but refused locally.
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(2),
            TxToken::new(11),
            vec![(Uid::from_raw(4), state(b"q"))],
        );
        let fault = p.try_prepare().expect_err("no store at node 2");
        assert_eq!(fault, PrepareFault::Refused(NodeId::new(2)));
        assert!(!fault.is_failure_caused(), "a refusal is not a crash");
        assert!(fault.to_string().contains("refused"));
    }

    #[test]
    fn abort_discards_prepared_writes() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(4);
        stores
            .write_local(NodeId::new(1), uid, state(b"old"))
            .unwrap();
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(1),
            TxToken::new(8),
            vec![(uid, state(b"new"))],
        );
        assert!(p.prepare());
        p.abort();
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"old");
        assert!(stores
            .with(NodeId::new(1), |s| s.indoubt())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn crash_between_phases_leaves_indoubt() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(5);
        let mut p = StoreWriteParticipant::new(
            &sim,
            &stores,
            NodeId::new(0),
            NodeId::new(1),
            TxToken::new(9),
            vec![(uid, state(b"w"))],
        );
        assert!(p.prepare());
        sim.crash(NodeId::new(1));
        assert!(!p.commit(), "commit attempt fails, decision stands");
        sim.recover(NodeId::new(1));
        assert_eq!(
            stores.with(NodeId::new(1), |s| s.indoubt()).unwrap(),
            vec![TxToken::new(9)]
        );
    }
}
