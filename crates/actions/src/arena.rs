//! The per-transaction undo-log arena.
//!
//! Before this arena existed, every write invocation registered its undo as
//! a boxed closure capturing a replica-handle vector and a pinned snapshot —
//! three heap allocations per write op (the ROADMAP's last allocation-debt
//! item). The arena replaces all of that with **one growable buffer per
//! transaction**: the *first* write to an object appends a snapshot entry
//! `(key, tag, pinned servers, snapshot bytes)`, and every subsequent write
//! appends only a `(key, op_id)` pair — amortised zero allocations per op.
//!
//! Ownership rules:
//!
//! * The arena belongs to exactly one transaction record. A nested action's
//!   arena is [absorbed](UndoArena::absorb) into its parent's on nested
//!   commit (parent entries stay *older*, so a later abort restores the
//!   parent's snapshot last and wins).
//! * On abort the arena is replayed **in reverse entry order** through the
//!   world's [`UndoApplier`]; each entry restores the object to its
//!   first-write snapshot and forgets every op id the transaction applied
//!   to it. Restoration is idempotent, so replay order only matters across
//!   entries of the *same* object (reverse order guarantees the oldest
//!   snapshot is installed last).
//! * On top-level commit the arena is simply cleared — nothing to undo.
//!
//! The arena stores no replica handles: the applier (the replication layer)
//! re-resolves each `(node, pinned incarnation)` pair at abort time and
//! skips replicas whose incarnation moved on, preserving the lineage rules
//! the boxed closures enforced by capturing pinned handles.

/// One first-write snapshot entry (ranges index the arena's flat buffers).
#[derive(Debug, Clone, Copy)]
struct UndoEntry {
    /// Object identity (uid raw).
    key: u64,
    /// Object class (type tag raw) the snapshot decodes as.
    tag: u32,
    /// Range into [`UndoArena::servers`].
    servers: (u32, u32),
    /// Range into [`UndoArena::buf`].
    snap: (u32, u32),
}

/// A transaction's undo log: one snapshot per touched object plus the op
/// ids applied since, all in flat per-transaction buffers.
#[derive(Debug, Default)]
pub struct UndoArena {
    /// Snapshot bytes, all entries concatenated.
    buf: Vec<u8>,
    /// Pinned `(node raw, incarnation)` pairs, all entries concatenated.
    servers: Vec<(u32, u64)>,
    /// `(key, op_id)` pairs for every applied write (batch frames log the
    /// batch id once); replay forgets them from the replicas' dedup rings.
    ops: Vec<(u64, u64)>,
    entries: Vec<UndoEntry>,
}

impl UndoArena {
    /// An empty arena.
    pub fn new() -> Self {
        UndoArena::default()
    }

    /// Whether a snapshot entry for `key` is already logged (the invoke
    /// path snapshots only the first write per object per transaction).
    pub fn has_entry(&self, key: u64) -> bool {
        // Transactions touch a handful of objects; a scan beats a map and
        // allocates nothing.
        self.entries.iter().any(|e| e.key == key)
    }

    /// Appends a first-write snapshot entry for `key`.
    pub fn push_entry(
        &mut self,
        key: u64,
        tag: u32,
        servers: impl IntoIterator<Item = (u32, u64)>,
        snapshot: &[u8],
    ) {
        let s0 = self.servers.len() as u32;
        self.servers.extend(servers);
        let s1 = self.servers.len() as u32;
        let b0 = self.buf.len() as u32;
        self.buf.extend_from_slice(snapshot);
        let b1 = self.buf.len() as u32;
        self.entries.push(UndoEntry {
            key,
            tag,
            servers: (s0, s1),
            snap: (b0, b1),
        });
    }

    /// Records one applied (possibly batch) operation id against `key`.
    pub fn push_op(&mut self, key: u64, op_id: u64) {
        self.ops.push((key, op_id));
    }

    /// Number of distinct objects with a snapshot entry.
    pub fn object_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of logged applied-op records.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is logged at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.ops.is_empty()
    }

    /// Discards everything (top-level commit).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.servers.clear();
        self.ops.clear();
        self.entries.clear();
    }

    /// Merges `child` into `self` (nested commit): child entries append
    /// *after* the parent's, so reverse replay restores the parent's older
    /// snapshots last.
    pub fn absorb(&mut self, child: UndoArena) {
        let sbase = self.servers.len() as u32;
        let bbase = self.buf.len() as u32;
        self.servers.extend_from_slice(&child.servers);
        self.buf.extend_from_slice(&child.buf);
        self.ops.extend_from_slice(&child.ops);
        for e in child.entries {
            self.entries.push(UndoEntry {
                key: e.key,
                tag: e.tag,
                servers: (e.servers.0 + sbase, e.servers.1 + sbase),
                snap: (e.snap.0 + bbase, e.snap.1 + bbase),
            });
        }
    }

    /// Replays every entry in reverse order through `applier`, handing each
    /// its pinned servers, the op ids applied to that object, and the
    /// snapshot bytes. `scratch` collects per-entry op ids (reused across
    /// entries so replay allocates at most once).
    pub fn replay(&self, applier: &dyn UndoApplier, scratch: &mut Vec<u64>) {
        for e in self.entries.iter().rev() {
            scratch.clear();
            scratch.extend(
                self.ops
                    .iter()
                    .filter(|&&(k, _)| k == e.key)
                    .map(|&(_, op)| op),
            );
            let servers = &self.servers[e.servers.0 as usize..e.servers.1 as usize];
            let snap = &self.buf[e.snap.0 as usize..e.snap.1 as usize];
            applier.undo(e.key, e.tag, servers, scratch, snap);
        }
    }
}

/// Restores one object from an undo-log entry. Implemented by the
/// replication layer (which owns the replica registry); the actions crate
/// stays ignorant of object representation.
pub trait UndoApplier {
    /// Restore object `key` (class `tag`) to `snapshot` on every listed
    /// `(node, pinned incarnation)` replica still on that incarnation,
    /// forgetting `op_ids` from the replicas' dedup state.
    fn undo(&self, key: u64, tag: u32, servers: &[(u32, u64)], op_ids: &[u64], snapshot: &[u8]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    type UndoRecord = (u64, u32, Vec<(u32, u64)>, Vec<u64>, Vec<u8>);

    #[derive(Default)]
    struct LogApplier {
        log: RefCell<Vec<UndoRecord>>,
    }

    impl UndoApplier for LogApplier {
        fn undo(&self, key: u64, tag: u32, servers: &[(u32, u64)], op_ids: &[u64], snap: &[u8]) {
            self.log.borrow_mut().push((
                key,
                tag,
                servers.to_vec(),
                op_ids.to_vec(),
                snap.to_vec(),
            ));
        }
    }

    #[test]
    fn entries_replay_in_reverse_with_their_ops() {
        let mut arena = UndoArena::new();
        assert!(arena.is_empty());
        arena.push_entry(1, 3, [(10, 1), (11, 2)], b"aaa");
        arena.push_op(1, 100);
        arena.push_entry(2, 3, [(10, 1)], b"bb");
        arena.push_op(2, 101);
        arena.push_op(1, 102);
        assert_eq!(arena.object_count(), 2);
        assert_eq!(arena.op_count(), 3);
        assert!(arena.has_entry(1) && arena.has_entry(2) && !arena.has_entry(3));

        let applier = LogApplier::default();
        let mut scratch = Vec::new();
        arena.replay(&applier, &mut scratch);
        let log = applier.log.borrow();
        assert_eq!(log.len(), 2);
        // Reverse order: object 2 first, then object 1.
        assert_eq!(log[0].0, 2);
        assert_eq!(log[0].3, vec![101]);
        assert_eq!(log[0].4, b"bb");
        assert_eq!(log[1].0, 1);
        assert_eq!(log[1].2, vec![(10, 1), (11, 2)]);
        assert_eq!(log[1].3, vec![100, 102]);
        assert_eq!(log[1].4, b"aaa");
    }

    #[test]
    fn absorb_appends_child_after_parent() {
        let mut parent = UndoArena::new();
        parent.push_entry(1, 1, [(1, 1)], b"parent");
        parent.push_op(1, 1);
        let mut child = UndoArena::new();
        child.push_entry(1, 1, [(1, 1)], b"child");
        child.push_entry(2, 1, [(2, 7)], b"other");
        child.push_op(1, 2);
        parent.absorb(child);
        assert_eq!(parent.object_count(), 3);

        let applier = LogApplier::default();
        parent.replay(&applier, &mut Vec::new());
        let log = applier.log.borrow();
        // Child entries replay first; the parent's older snapshot of object
        // 1 replays last and wins.
        assert_eq!(log[0].0, 2);
        assert_eq!(log[1].4, b"child");
        assert_eq!(log[2].4, b"parent");
        // Both ops on object 1 are forgotten by each of its entries.
        assert_eq!(log[1].3, vec![1, 2]);
        assert_eq!(log[2].3, vec![1, 2]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut arena = UndoArena::new();
        arena.push_entry(1, 1, [(1, 1)], b"x");
        arena.push_op(1, 9);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.object_count(), 0);
        assert_eq!(arena.op_count(), 0);
    }
}
