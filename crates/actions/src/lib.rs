//! Atomic action (transaction) substrate for `groupview`.
//!
//! The paper (§2.2) assumes an *Atomic Action service* with the classic
//! properties — serialisability, failure atomicity, permanence of effect —
//! plus two structuring facilities its binding schemes rely on:
//!
//! * **nested atomic actions** (Figure 6): a child action whose locks and
//!   effects are inherited by its parent on commit and undone on abort;
//! * **nested top-level actions** (Figure 8): an independent top-level
//!   action started from *within* another action, committing durably
//!   regardless of what the enclosing action later does.
//!
//! It also requires a lock-based concurrency-control service with **type
//! specific lock modes**: §4.2.1 introduces an *exclude-write* lock that is
//! compatible with read locks, so a committing client can prune failed
//! stores from `St(A)` without forcing concurrent readers to abort.
//!
//! This crate implements all of that:
//!
//! * [`LockManager`] — strict two-phase locking over abstract [`LockKey`]s
//!   with [`LockMode::Read`] / [`LockMode::Write`] /
//!   [`LockMode::ExcludeWrite`] modes, refusal-based conflict handling (the
//!   paper's schemes abort rather than wait), upgrade rules, and Moss-style
//!   ancestor inheritance for nested actions;
//! * [`TxSystem`] — the action manager: begin/commit/abort for top-level,
//!   nested, and nested-top-level actions, LIFO undo logs, and a two-phase
//!   commit protocol over [`Participant`]s;
//! * [`StoreWriteParticipant`] — the standard participant that installs new
//!   object states into a node's stable store at commit (phase 1 writes the
//!   store's intent log; in-doubt transactions are resolved from the
//!   coordinator's decision record after a crash).
//!
//! # Example
//!
//! ```rust
//! use groupview_sim::{Sim, SimConfig, NodeId};
//! use groupview_store::Stores;
//! use groupview_actions::{TxSystem, LockKey, LockMode};
//!
//! let sim = Sim::new(SimConfig::new(1).with_nodes(2));
//! let stores = Stores::new(&sim);
//! let tx = TxSystem::new(&sim, &stores);
//!
//! let a = tx.begin_top(NodeId::new(0));
//! let key = LockKey::new(1, 42);
//! tx.lock(a, key, LockMode::Write)?;
//!
//! // A concurrent action cannot acquire a conflicting lock...
//! let b = tx.begin_top(NodeId::new(1));
//! assert!(tx.lock(b, key, LockMode::Read).is_err());
//!
//! tx.commit(a)?;
//! // ...until the holder commits.
//! tx.lock(b, key, LockMode::Read)?;
//! tx.commit(b)?;
//! # Ok::<(), groupview_actions::TxError>(())
//! ```

pub mod action;
pub mod arena;
pub mod error;
pub mod lock;
pub mod manager;
pub mod participant;

pub use crate::action::{ActionId, ActionKind, ActionStatus};
pub use crate::arena::{UndoApplier, UndoArena};
pub use crate::error::TxError;
pub use crate::lock::{LockKey, LockManager, LockMode};
pub use crate::manager::{TxStats, TxSystem};
pub use crate::participant::{Participant, PrepareFault, StoreWriteParticipant};
