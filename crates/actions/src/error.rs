//! Transaction-layer errors.

use crate::action::ActionId;
use crate::lock::{LockKey, LockMode};
use groupview_sim::{NetError, NodeId};
use std::error::Error;
use std::fmt;

/// Failures of atomic-action operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// A lock request conflicted with a lock held by an unrelated action.
    ///
    /// The paper's schemes respond to refusal by aborting the requesting
    /// action ("if the lock promotion succeeds, the exclude operation can be
    /// performed, else the client action must abort") — there is no waiting,
    /// hence no deadlock.
    LockRefused {
        /// The contested resource.
        key: LockKey,
        /// The mode that was requested.
        requested: LockMode,
        /// The mode already held by a conflicting action.
        held: LockMode,
    },
    /// The action is not active (already committed/aborted, or unknown).
    NotActive(ActionId),
    /// Two-phase commit failed in the prepare phase; the action aborted.
    PrepareFailed {
        /// The participant node that could not prepare.
        node: NodeId,
    },
    /// The action's coordinator node is down, so it cannot commit.
    CoordinatorDown(NodeId),
    /// A network failure surfaced directly (e.g. the client could not reach
    /// a database node at all).
    Net(NetError),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::LockRefused {
                key,
                requested,
                held,
            } => write!(
                f,
                "lock {requested} on {key} refused (conflicting {held} lock held)"
            ),
            TxError::NotActive(a) => write!(f, "action {a} is not active"),
            TxError::PrepareFailed { node } => {
                write!(
                    f,
                    "two-phase commit: participant on {node} failed to prepare"
                )
            }
            TxError::CoordinatorDown(n) => write!(f, "coordinator node {n} is down"),
            TxError::Net(e) => write!(f, "network failure: {e}"),
        }
    }
}

impl Error for TxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for TxError {
    fn from(e: NetError) -> Self {
        TxError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TxError::LockRefused {
            key: LockKey::new(1, 2),
            requested: LockMode::Write,
            held: LockMode::Read,
        };
        assert!(e.to_string().contains("refused"));
        assert!(TxError::NotActive(ActionId::from_raw(3))
            .to_string()
            .contains("a3"));
        assert!(TxError::PrepareFailed {
            node: NodeId::new(1)
        }
        .to_string()
        .contains("prepare"));
        assert!(TxError::CoordinatorDown(NodeId::new(2))
            .to_string()
            .contains("n2"));
    }

    #[test]
    fn net_conversion() {
        let e: TxError = NetError::Timeout.into();
        assert_eq!(e, TxError::Net(NetError::Timeout));
        assert!(Error::source(&e).is_some());
    }
}
