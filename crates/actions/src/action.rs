//! Action identities and lifecycle states.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of an atomic action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId(u64);

impl ActionId {
    /// Reconstructs an id from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        ActionId(raw)
    }

    /// The raw value (also used as the stable [`groupview_store::TxToken`]).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// How an action relates to its surroundings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// An outermost application action; commit runs two-phase commit.
    TopLevel,
    /// A child of another action (paper Figure 6): its locks and undo
    /// records are *inherited by the parent* on commit, and its effects are
    /// undone if it (or later its parent) aborts.
    Nested,
    /// An independent top-level action started from within another action
    /// (paper Figure 8): commits durably on its own; the enclosing action's
    /// outcome does not affect it.
    NestedTopLevel,
}

impl ActionKind {
    /// Whether this kind commits durably by itself (runs two-phase commit).
    pub fn is_top_level(self) -> bool {
        matches!(self, ActionKind::TopLevel | ActionKind::NestedTopLevel)
    }
}

/// Lifecycle state of an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionStatus {
    /// The action may still acquire locks and perform operations.
    Active,
    /// The action committed.
    Committed,
    /// The action aborted; all its effects were undone.
    Aborted,
}

impl fmt::Display for ActionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionStatus::Active => write!(f, "active"),
            ActionStatus::Committed => write!(f, "committed"),
            ActionStatus::Aborted => write!(f, "aborted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let a = ActionId::from_raw(9);
        assert_eq!(a.raw(), 9);
        assert_eq!(a.to_string(), "a9");
    }

    #[test]
    fn kinds_know_their_commit_protocol() {
        assert!(ActionKind::TopLevel.is_top_level());
        assert!(ActionKind::NestedTopLevel.is_top_level());
        assert!(!ActionKind::Nested.is_top_level());
    }

    #[test]
    fn status_displays() {
        assert_eq!(ActionStatus::Active.to_string(), "active");
        assert_eq!(ActionStatus::Committed.to_string(), "committed");
        assert_eq!(ActionStatus::Aborted.to_string(), "aborted");
    }
}
