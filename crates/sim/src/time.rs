//! Virtual time for the simulation.
//!
//! All latencies in the simulator are expressed in microseconds of *virtual*
//! time. The clock only advances when messages are delivered, local work is
//! charged, or a driver explicitly advances it — wall-clock time never leaks
//! into protocol behaviour, which keeps runs deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in virtual time, measured in microseconds since simulation start.
///
/// ```rust
/// use groupview_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```rust
/// use groupview_sim::SimDuration;
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 1_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Virtual time elapsed since `earlier`, saturating at zero.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milliseconds; convenient for reports.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let mut t = SimTime::from_millis(1);
        t += SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 1_250);
        assert_eq!(t.since(SimTime::from_micros(1_000)).as_micros(), 250);
        // `since` saturates rather than underflowing.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(2) - SimDuration::from_micros(500);
        assert_eq!(d.as_micros(), 1_500);
        assert_eq!((d * 2).as_micros(), 3_000);
        let total: SimDuration = [d, d].into_iter().sum();
        assert_eq!(total.as_micros(), 3_000);
        assert_eq!(d.as_millis_f64(), 1.5);
        assert_eq!(
            SimDuration::from_micros(1).saturating_sub(SimDuration::from_micros(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }
}
