//! Identifiers for the entities participating in a simulation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a simulated node (a "workstation" in the paper's model).
///
/// Node ids are dense indices assigned by [`crate::Sim`] in creation order,
/// so they can be used to index per-node tables.
///
/// ```rust
/// use groupview_sim::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, usable for table lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw numeric id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identity of a logical client application.
///
/// A client is an *application program* in the paper's terminology: it runs
/// atomic actions against persistent objects from some node. Clients are
/// tracked separately from nodes because several clients may run on one node
/// and the Object Server database's *use lists* count clients, not nodes.
///
/// ```rust
/// use groupview_sim::ClientId;
/// assert_eq!(ClientId::new(7).to_string(), "c7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id.
    pub const fn new(id: u32) -> Self {
        ClientId(id)
    }

    /// The raw numeric id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The dense index of this client, usable for table lookup.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip_and_display() {
        let n = NodeId::new(12);
        assert_eq!(n.index(), 12);
        assert_eq!(n.raw(), 12);
        assert_eq!(format!("{n}"), "n12");
        assert_eq!(NodeId::from(12u32), n);
    }

    #[test]
    fn client_id_roundtrip_and_display() {
        let c = ClientId::new(3);
        assert_eq!(c.raw(), 3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "c3");
        assert_eq!(ClientId::from(3u32), c);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(ClientId::new(1) < ClientId::new(2));
        let set: HashSet<NodeId> = [NodeId::new(1), NodeId::new(1), NodeId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
