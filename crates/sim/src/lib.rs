//! Deterministic discrete-event simulation kernel for `groupview`.
//!
//! The paper this project reproduces (Little, McCue, Shrivastava,
//! *Maintaining Information about Persistent Replicated Objects in a
//! Distributed System*, ICDCS 1993) assumes a set of fail-silent
//! workstations connected by a local-area network. This crate provides that
//! substrate as a **deterministic, single-threaded simulation**: every run is
//! a pure function of its [`SimConfig`] (including the RNG seed), which makes
//! protocol-level failure interleavings — "the node crashed after delivering
//! one of its two replies" — exactly reproducible in tests and benchmarks.
//!
//! # Responsibilities
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) advanced by message
//!   latencies and explicit charges.
//! * **Node lifecycle**: nodes are *up* or *crashed* (fail-silent, §2.1 of
//!   the paper). Each crash bumps the node's *epoch*, which downstream crates
//!   use to invalidate volatile state automatically.
//! * **Network model**: per-message latency (base + jitter), probabilistic
//!   drops, symmetric partitions, and scripted fault points such as
//!   [`Sim::crash_after_sends`].
//! * **RPC**: a synchronous request/response helper ([`Sim::rpc`]) that
//!   preserves the failure asymmetry the paper reasons about — a server may
//!   execute an invocation and crash *before* the reply is delivered.
//! * **Cost accounts**: per-client latency/message accounting that stays
//!   correct when a driver interleaves many logical clients.
//! * **Event schedule**: timed crash/recovery/custom events for workloads.
//! * **Wire layer** ([`wire`]): reference-counted [`Bytes`] buffers, the
//!   pooled [`WireEncoder`], and the [`Codec`] trait — the zero-copy
//!   payload substrate every protocol layer shares.
//!
//! # Example
//!
//! ```rust
//! use groupview_sim::{Sim, SimConfig, NodeId};
//!
//! let sim = Sim::new(SimConfig::new(42).with_nodes(3));
//! let a = NodeId::new(0);
//! let b = NodeId::new(1);
//! let reply = sim.rpc(a, b, 64, 16, || "pong").expect("b is up");
//! assert_eq!(reply, "pong");
//! sim.crash(b);
//! assert!(sim.rpc(a, b, 64, 16, || "pong").is_err());
//! ```

pub mod config;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod rpc;
pub mod time;
pub mod trace;
pub mod wire;
pub mod world;

pub use crate::config::{NetConfig, SimConfig};
pub use crate::error::NetError;
pub use crate::ids::{ClientId, NodeId};
pub use crate::metrics::{Cost, NetCounters};
pub use crate::time::{SimDuration, SimTime};
pub use crate::trace::TraceEvent;
pub use crate::wire::{Bytes, Codec, WireEncoder, WireStats};
pub use crate::world::{ScheduledEvent, Sim};

/// Compile-time proof that everything which crosses a shard-thread
/// boundary is `Send`. The world itself ([`Sim`]) is deliberately
/// `!Send` — each shard thread owns its world exclusively — but frames,
/// stats, errors, and counters travel between threads (see
/// `docs/SHARDING.md`). A stray `Rc` in any of these fails the build
/// here, not in a future refactor.
#[cfg(test)]
mod send_boundary {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn boundary_types_are_send() {
        assert_send::<Bytes>();
        assert_send::<WireEncoder>();
        assert_send::<WireStats>();
        assert_send::<NetError>();
        assert_send::<NetCounters>();
        assert_send::<NetConfig>();
        assert_send::<SimConfig>();
        assert_send::<ClientId>();
        assert_send::<NodeId>();
        assert_send::<SimTime>();
        assert_send::<SimDuration>();
        assert_send::<TraceEvent>();
        assert_send::<Cost>();
    }

    #[test]
    fn shared_frames_are_sync() {
        // `Bytes` clones fan a frame out to many shard threads at once.
        assert_sync::<Bytes>();
        assert_sync::<WireEncoder>();
    }
}
