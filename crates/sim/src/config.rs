//! Simulation configuration.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated network.
///
/// Defaults model a lightly loaded early-90s LAN in spirit: sub-millisecond
/// point-to-point latency, no drops. Experiments override the pieces they
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Minimum one-way message latency.
    pub base_latency: SimDuration,
    /// Uniform jitter added on top of `base_latency` (`0..=jitter`).
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that any individual message is lost.
    pub drop_probability: f64,
    /// How long an RPC caller waits before concluding the call failed.
    pub rpc_timeout: SimDuration,
    /// Cost charged for local stable-storage writes (disk forces).
    pub stable_write: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_latency: SimDuration::from_micros(500),
            jitter: SimDuration::from_micros(200),
            drop_probability: 0.0,
            rpc_timeout: SimDuration::from_millis(20),
            stable_write: SimDuration::from_micros(800),
        }
    }
}

impl NetConfig {
    /// A lossy network dropping each message with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
        self
    }

    /// Overrides the base one-way latency.
    pub fn with_base_latency(mut self, d: SimDuration) -> Self {
        self.base_latency = d;
        self
    }

    /// Overrides the latency jitter bound.
    pub fn with_jitter(mut self, d: SimDuration) -> Self {
        self.jitter = d;
        self
    }

    /// Overrides the RPC timeout.
    pub fn with_rpc_timeout(mut self, d: SimDuration) -> Self {
        self.rpc_timeout = d;
        self
    }
}

/// Full configuration of a simulation run.
///
/// A run is a pure function of this value: same config (notably the `seed`)
/// ⇒ same trace, same metrics, same outcome.
///
/// ```rust
/// use groupview_sim::{Sim, SimConfig};
/// let cfg = SimConfig::new(7).with_nodes(4).with_trace();
/// let sim = Sim::new(cfg);
/// assert_eq!(sim.num_nodes(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for the simulation's random number generator.
    pub seed: u64,
    /// Number of nodes created up front (more can be added later).
    pub nodes: usize,
    /// Network model parameters.
    pub net: NetConfig,
    /// Whether to record a full event trace (costs memory; for debugging).
    pub trace: bool,
    /// Maximum retained trace events. The trace is a ring: once full, the
    /// oldest event is discarded for each new one and the drop is counted
    /// (see `Sim::trace_dropped`), so tracing a soak run cannot exhaust
    /// memory. `0` means unbounded.
    pub trace_capacity: usize,
}

/// Default [`SimConfig::trace_capacity`]: generous enough to hold every
/// event of any scenario/example run in this workspace, small enough that a
/// traced soak stays bounded (~64k events ≈ a few MiB).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl SimConfig {
    /// Creates a configuration with the given RNG seed and defaults.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            nodes: 0,
            net: NetConfig::default(),
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Sets the number of nodes created at startup.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Replaces the network model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Enables event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables event tracing with an explicit ring capacity (`0` =
    /// unbounded).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace = true;
        self.trace_capacity = capacity;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let net = NetConfig::default();
        assert!(net.base_latency > SimDuration::ZERO);
        assert_eq!(net.drop_probability, 0.0);
        assert!(net.rpc_timeout > net.base_latency + net.jitter);
    }

    #[test]
    fn builders_compose() {
        let cfg = SimConfig::new(9)
            .with_nodes(5)
            .with_net(
                NetConfig::default()
                    .with_drop_probability(0.25)
                    .with_base_latency(SimDuration::from_micros(100))
                    .with_jitter(SimDuration::from_micros(10))
                    .with_rpc_timeout(SimDuration::from_millis(5)),
            )
            .with_trace();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.nodes, 5);
        assert_eq!(cfg.net.drop_probability, 0.25);
        assert_eq!(cfg.net.base_latency.as_micros(), 100);
        assert!(cfg.trace);
        assert_eq!(cfg.trace_capacity, DEFAULT_TRACE_CAPACITY);
        let capped = SimConfig::new(9).with_trace_capacity(16);
        assert!(capped.trace, "with_trace_capacity implies tracing");
        assert_eq!(capped.trace_capacity, 16);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn drop_probability_is_validated() {
        let _ = NetConfig::default().with_drop_probability(1.5);
    }
}
