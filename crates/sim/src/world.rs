//! The simulation world: nodes, network, virtual clock, fault injection.

use crate::config::SimConfig;
use crate::error::NetError;
use crate::ids::NodeId;
use crate::metrics::{Cost, NetCounters};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// An event scheduled at a virtual time, executed by [`Sim::run_due_events`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScheduledEvent {
    /// Crash the node at the scheduled time.
    Crash(NodeId),
    /// Recover the node at the scheduled time. The driver is expected to run
    /// the appropriate recovery protocol afterwards (the simulator only flips
    /// liveness).
    Recover(NodeId),
    /// An opaque marker returned to the driver (e.g. "run cleanup daemon").
    Custom(u64),
}

#[derive(Debug)]
struct NodeState {
    up: bool,
    /// Incremented on every crash; volatile state tagged with an older epoch
    /// is considered lost (see `groupview-store`'s `Volatile`).
    epoch: u64,
    /// Scripted fault point: crash this node after it completes this many
    /// more successful sends.
    crash_after_sends: Option<u32>,
    /// Bytes delivered *to* this node over the lifetime of the world.
    /// Always-on observer counters (never read by protocol code), surfaced
    /// per node through [`Sim::node_traffic`] for load attribution.
    bytes_in: u64,
    /// Bytes this node sent that were actually delivered.
    bytes_out: u64,
}

impl NodeState {
    fn fresh() -> NodeState {
        NodeState {
            up: true,
            epoch: 0,
            crash_after_sends: None,
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

#[derive(Debug)]
struct SimCore {
    cfg: SimConfig,
    clock: SimTime,
    rng: StdRng,
    /// Values drawn from `rng` since the world was created. Observability
    /// parity tests compare this across runs: tracing and span recording
    /// must never consume a draw.
    rng_draws: u64,
    nodes: Vec<NodeState>,
    /// Symmetric blocked pairs, stored with the smaller id first.
    blocked: HashSet<(NodeId, NodeId)>,
    counters: NetCounters,
    accounts: HashMap<u64, Cost>,
    active_account: Option<u64>,
    /// Raw id of the atomic action currently driving protocol work, stamped
    /// onto message trace events for causal attribution.
    active_action: Option<u64>,
    schedule: BinaryHeap<Reverse<(SimTime, u64, ScheduledEvent)>>,
    schedule_seq: u64,
    trace: Option<TraceRing>,
}

/// The bounded trace buffer: a ring that discards the oldest event once
/// full, counting what it drops, so long traced runs stay within a fixed
/// memory budget.
#[derive(Debug)]
struct TraceRing {
    buf: std::collections::VecDeque<TraceEvent>,
    /// Maximum retained events; `0` means unbounded.
    cap: usize,
    dropped: u64,
}

impl TraceRing {
    fn new(cap: usize) -> TraceRing {
        TraceRing {
            buf: std::collections::VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.cap > 0 && self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Drains the retained events in arrival order; the dropped count
    /// survives the drain.
    fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Handle to a simulation world.
///
/// `Sim` is a cheap, cloneable handle (`Rc`-based — the simulator is
/// deliberately single-threaded for determinism). All protocol layers keep a
/// clone and interact with the world through it.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<SimCore>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.inner.borrow();
        f.debug_struct("Sim")
            .field("clock", &core.clock)
            .field("nodes", &core.nodes.len())
            .field("counters", &core.counters)
            .finish()
    }
}

impl Sim {
    /// Creates a new world from a configuration.
    pub fn new(cfg: SimConfig) -> Sim {
        let nodes = (0..cfg.nodes).map(|_| NodeState::fresh()).collect();
        Sim {
            inner: Rc::new(RefCell::new(SimCore {
                rng: StdRng::seed_from_u64(cfg.seed),
                rng_draws: 0,
                clock: SimTime::ZERO,
                nodes,
                blocked: HashSet::new(),
                counters: NetCounters::default(),
                accounts: HashMap::new(),
                active_account: None,
                active_action: None,
                schedule: BinaryHeap::new(),
                schedule_seq: 0,
                trace: if cfg.trace {
                    Some(TraceRing::new(cfg.trace_capacity))
                } else {
                    None
                },
                cfg,
            })),
        }
    }

    /// The configuration this world was created with.
    pub fn config(&self) -> SimConfig {
        self.inner.borrow().cfg
    }

    /// Adds a node to the world, returning its id. Membership changes are
    /// recorded in the trace ring (when tracing is on) so exported traces
    /// show when the world grew.
    pub fn add_node(&self) -> NodeId {
        let mut core = self.inner.borrow_mut();
        let id = NodeId::new(core.nodes.len() as u32);
        core.nodes.push(NodeState::fresh());
        let at = core.clock;
        core.trace(TraceEvent::Note {
            at,
            text: format!("membership: node {id} joined the world"),
        });
        id
    }

    /// Lifetime delivered traffic of one node as `(bytes_in, bytes_out)`.
    /// Counts only messages that were actually delivered (drops, partition
    /// losses and sends to down nodes are excluded), matching the global
    /// `bytes_delivered` counter.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this world.
    pub fn node_traffic(&self, n: NodeId) -> (u64, u64) {
        let core = self.inner.borrow();
        let state = &core.nodes[n.index()];
        (state.bytes_in, state.bytes_out)
    }

    /// Number of nodes in the world.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// All node ids, in creation order.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as u32).map(NodeId::new).collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().clock
    }

    /// Advances the clock without charging any account (driver idle time).
    pub fn advance(&self, d: SimDuration) {
        self.inner.borrow_mut().clock += d;
    }

    // ----- node lifecycle ---------------------------------------------------

    /// Whether the node is currently functioning.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this world.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.inner.borrow().nodes[n.index()].up
    }

    /// The node's crash epoch: incremented on every crash. Volatile state
    /// tagged with an older epoch must be treated as lost.
    pub fn epoch(&self, n: NodeId) -> u64 {
        self.inner.borrow().nodes[n.index()].epoch
    }

    /// Crashes a node (fail-silent). Idempotent.
    pub fn crash(&self, n: NodeId) {
        let mut core = self.inner.borrow_mut();
        core.crash_node(n);
    }

    /// Recovers a crashed node. The node's volatile state stays lost (its
    /// epoch was bumped at crash time); stable storage is unaffected.
    /// Idempotent. Also disarms a pending [`Sim::crash_after_sends`] fault
    /// point that never fired — "recover" returns the node to a healthy
    /// state, scripted faults included.
    pub fn recover(&self, n: NodeId) {
        let mut core = self.inner.borrow_mut();
        core.nodes[n.index()].crash_after_sends = None;
        if !core.nodes[n.index()].up {
            core.nodes[n.index()].up = true;
            core.counters.recoveries += 1;
            let at = core.clock;
            core.trace(TraceEvent::Recover { at, node: n });
        }
    }

    /// Scripted fault point: node `n` crashes immediately after completing
    /// its next `k` send *attempts*.
    ///
    /// Every attempt the node actually makes counts — delivered, randomly
    /// dropped, partitioned, or addressed to a crashed receiver — because in
    /// all of those cases the sender did hand the message to the network
    /// before the budget ticks down. (Attempts refused because the sender
    /// itself is already down are not sends at all.)
    ///
    /// This reproduces the paper's Figure 1 scenario ("B fails during
    /// delivery of the reply to GA" such that A1 receives the reply but A2
    /// does not): set `k = 1` before `B` sprays its replies. Counting
    /// attempts rather than deliveries keeps the crash at the scripted spot
    /// even when a lossy network swallows some of the sends.
    pub fn crash_after_sends(&self, n: NodeId, k: u32) {
        self.inner.borrow_mut().nodes[n.index()].crash_after_sends = Some(k);
    }

    // ----- partitions -------------------------------------------------------

    /// Blocks all traffic between `a` and `b` (symmetric).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.borrow_mut().block_pair(a, b);
    }

    /// Restores traffic between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.borrow_mut().unblock_pair(a, b);
    }

    /// Partitions the world into two sides: every cross-side pair is blocked.
    pub fn partition_groups(&self, side_a: &[NodeId], side_b: &[NodeId]) {
        let mut core = self.inner.borrow_mut();
        for &a in side_a {
            for &b in side_b {
                core.block_pair(a, b);
            }
        }
    }

    /// Removes all partitions.
    pub fn heal_all(&self) {
        let mut core = self.inner.borrow_mut();
        let mut pairs: Vec<(NodeId, NodeId)> = core.blocked.iter().copied().collect();
        pairs.sort_unstable();
        for (a, b) in pairs {
            core.unblock_pair(a, b);
        }
    }

    /// Whether traffic between `a` and `b` is currently blocked.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.inner.borrow().blocked.contains(&norm_pair(a, b))
    }

    // ----- network quality --------------------------------------------------

    /// The current per-message loss probability.
    pub fn drop_probability(&self) -> f64 {
        self.inner.borrow().cfg.net.drop_probability
    }

    /// Changes the per-message loss probability mid-run (fault plans ramp
    /// this up and back down to model lossy windows).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_drop_probability(&self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.inner.borrow_mut().cfg.net.drop_probability = p;
    }

    // ----- randomness -------------------------------------------------------

    /// Uniform `f64` in `[0, 1)` from the seeded generator.
    pub fn random_f64(&self) -> f64 {
        let mut core = self.inner.borrow_mut();
        core.rng_draws += 1;
        core.rng.random()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_below(&self, n: u64) -> u64 {
        assert!(n > 0, "random_below(0)");
        let mut core = self.inner.borrow_mut();
        core.rng_draws += 1;
        core.rng.random_range(0..n)
    }

    /// Number of values drawn from the seeded generator since the world was
    /// created. Two runs that agree on this (and the seed) consumed an
    /// identical random stream — the parity tests' proof that observability
    /// never perturbs the simulation.
    pub fn rng_draws(&self) -> u64 {
        self.inner.borrow().rng_draws
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random_f64() < p
        }
    }

    /// Fisher–Yates shuffle using the seeded generator.
    pub fn shuffle<T>(&self, items: &mut [T]) {
        let mut core = self.inner.borrow_mut();
        for i in (1..items.len()).rev() {
            core.rng_draws += 1;
            let j = core.rng.random_range(0..=i);
            items.swap(i, j);
        }
    }

    // ----- cost accounts ----------------------------------------------------

    /// Sets the account subsequent message costs are charged to.
    ///
    /// Workload drivers set this to the acting client's id before running a
    /// client step, so per-client latency is measured correctly even though
    /// the world is single-threaded.
    pub fn set_active_account(&self, account: Option<u64>) {
        self.inner.borrow_mut().active_account = account;
    }

    /// The currently active account, if any.
    pub fn active_account(&self) -> Option<u64> {
        self.inner.borrow().active_account
    }

    /// Sets the atomic action subsequent message trace events are
    /// attributed to (the causal `action=` tag on `Deliver`/`Lost`).
    ///
    /// The replication layer sets this around each protocol phase it runs
    /// on behalf of an action; attribution costs nothing when tracing is
    /// off.
    pub fn set_active_action(&self, action: Option<u64>) {
        self.inner.borrow_mut().active_action = action;
    }

    /// The action currently attributed, if any.
    pub fn active_action(&self) -> Option<u64> {
        self.inner.borrow().active_action
    }

    /// Runs `f` with `action` as the attributed action, restoring the
    /// previous attribution afterwards (so nested protocol phases compose).
    pub fn with_active_action<T>(&self, action: u64, f: impl FnOnce() -> T) -> T {
        let prev = self.active_action();
        self.set_active_action(Some(action));
        let out = f();
        self.set_active_action(prev);
        out
    }

    /// Resets an account to zero cost.
    pub fn account_reset(&self, account: u64) {
        self.inner.borrow_mut().accounts.insert(account, Cost::ZERO);
    }

    /// Reads an account's accumulated cost.
    pub fn account_cost(&self, account: u64) -> Cost {
        self.inner
            .borrow()
            .accounts
            .get(&account)
            .copied()
            .unwrap_or(Cost::ZERO)
    }

    /// Charges local (non-network) work to the clock and active account,
    /// e.g. a stable-storage force.
    pub fn charge_local(&self, d: SimDuration) {
        let mut core = self.inner.borrow_mut();
        core.clock += d;
        core.charge(d, 0);
    }

    /// Charges the configured stable-storage write cost.
    pub fn charge_stable_write(&self) {
        let d = self.inner.borrow().cfg.net.stable_write;
        self.charge_local(d);
    }

    // ----- messaging --------------------------------------------------------

    /// Attempts to deliver one message from `from` to `to`.
    ///
    /// On success the clock advances by the sampled latency, which is charged
    /// to the active account, and the latency is returned. On failure the
    /// clock does **not** advance here — RPC-level code charges the timeout
    /// (see [`Sim::charge_timeout`]) because only the caller knows whether it
    /// waits.
    ///
    /// Scripted `crash_after_sends` fault points fire after the send
    /// attempt completes, delivered or not (the sender sent either way; see
    /// [`Sim::crash_after_sends`]).
    ///
    /// Loss attribution: the receiver's liveness is checked **before** the
    /// random drop roll, so a message to a crashed receiver always counts
    /// as `to_down_node` — a lossy network must never randomly reclassify
    /// it as `dropped` (the scenario oracle's abort taxonomy relies on
    /// these causes). This also means down-receiver traffic consumes no
    /// RNG draw.
    ///
    /// # Errors
    ///
    /// [`NetError::NodeDown`] if either endpoint is crashed,
    /// [`NetError::Partitioned`] if the pair is partitioned, and
    /// [`NetError::Dropped`] on a random loss.
    pub fn deliver(&self, from: NodeId, to: NodeId, bytes: usize) -> Result<SimDuration, NetError> {
        let mut core = self.inner.borrow_mut();
        let at = core.clock;
        if !core.nodes[from.index()].up {
            core.counters.to_down_node += 1;
            let action = core.active_action;
            core.trace(TraceEvent::Lost {
                at,
                from,
                to,
                cause: "sender down",
                action,
            });
            return Err(NetError::NodeDown(from));
        }
        // The sender is up: from here on the message has left the sender,
        // so whatever the outcome, the attempt consumes one unit of the
        // scripted crash-after-sends budget before returning.
        let result = core.attempt_delivery(from, to, bytes);
        core.consume_send_budget(from);
        result
    }

    /// Charges one RPC timeout to the clock, the active account, and the
    /// timeout counter.
    pub fn charge_timeout(&self) {
        let mut core = self.inner.borrow_mut();
        let d = core.cfg.net.rpc_timeout;
        core.clock += d;
        core.charge(d, 1);
        core.counters.timeouts += 1;
    }

    // ----- schedule ---------------------------------------------------------

    /// Schedules an event at an absolute virtual time.
    pub fn schedule(&self, at: SimTime, ev: ScheduledEvent) {
        let mut core = self.inner.borrow_mut();
        let seq = core.schedule_seq;
        core.schedule_seq += 1;
        core.schedule.push(Reverse((at, seq, ev)));
    }

    /// Schedules an event `after` from now.
    pub fn schedule_in(&self, after: SimDuration, ev: ScheduledEvent) {
        let at = self.now() + after;
        self.schedule(at, ev);
    }

    /// Executes all events due at or before the current time.
    ///
    /// `Crash`/`Recover` are applied to the world; every fired event
    /// (including `Custom`) is returned so drivers can react (e.g. run a
    /// recovery protocol after a `Recover`).
    pub fn run_due_events(&self) -> Vec<ScheduledEvent> {
        let mut fired = Vec::new();
        loop {
            let ev = {
                let mut core = self.inner.borrow_mut();
                match core.schedule.peek() {
                    Some(Reverse((at, _, _))) if *at <= core.clock => {
                        let Reverse((_, _, ev)) = core.schedule.pop().expect("peeked");
                        Some(ev)
                    }
                    _ => None,
                }
            };
            match ev {
                Some(ScheduledEvent::Crash(n)) => {
                    self.crash(n);
                    fired.push(ScheduledEvent::Crash(n));
                }
                Some(ScheduledEvent::Recover(n)) => {
                    self.recover(n);
                    fired.push(ScheduledEvent::Recover(n));
                }
                Some(custom) => fired.push(custom),
                None => break,
            }
        }
        fired
    }

    /// Whether any scheduled events remain.
    pub fn has_pending_events(&self) -> bool {
        !self.inner.borrow().schedule.is_empty()
    }

    /// The time of the next scheduled event, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.inner
            .borrow()
            .schedule
            .peek()
            .map(|Reverse((at, _, _))| *at)
    }

    // ----- instrumentation --------------------------------------------------

    /// Snapshot of the global network counters.
    pub fn counters(&self) -> NetCounters {
        self.inner.borrow().counters
    }

    /// Appends a free-form note to the trace (no-op when tracing is off).
    pub fn note(&self, text: impl Into<String>) {
        let mut core = self.inner.borrow_mut();
        let at = core.clock;
        let text = text.into();
        core.trace(TraceEvent::Note { at, text });
    }

    /// Takes the recorded trace, leaving an empty one. Returns `None` when
    /// tracing was not enabled. When the ring overflowed, the returned
    /// events are the **most recent** `trace_capacity`; see
    /// [`Sim::trace_dropped`] for how many older events were discarded.
    pub fn take_trace(&self) -> Option<Vec<TraceEvent>> {
        self.inner.borrow_mut().trace.as_mut().map(TraceRing::take)
    }

    /// Number of trace events discarded because the ring was full (0 when
    /// tracing is off or the ring never overflowed).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.borrow().trace.as_ref().map_or(0, |t| t.dropped)
    }
}

impl SimCore {
    /// One network attempt from an **up** sender: partition check, receiver
    /// liveness, drop roll (in that order — attribution before randomness),
    /// then latency and accounting on success.
    fn attempt_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> Result<SimDuration, NetError> {
        let at = self.clock;
        let action = self.active_action;
        if self.blocked.contains(&norm_pair(from, to)) {
            self.counters.partitioned += 1;
            self.trace(TraceEvent::Lost {
                at,
                from,
                to,
                cause: "partitioned",
                action,
            });
            return Err(NetError::Partitioned { from, to });
        }
        if !self.nodes[to.index()].up {
            self.counters.to_down_node += 1;
            self.trace(TraceEvent::Lost {
                at,
                from,
                to,
                cause: "receiver down",
                action,
            });
            return Err(NetError::NodeDown(to));
        }
        let p = self.cfg.net.drop_probability;
        if p > 0.0 {
            self.rng_draws += 1;
            if self.rng.random::<f64>() < p {
                self.counters.dropped += 1;
                self.trace(TraceEvent::Lost {
                    at,
                    from,
                    to,
                    cause: "dropped",
                    action,
                });
                return Err(NetError::Dropped);
            }
        }
        let jitter = self.cfg.net.jitter.as_micros();
        let extra = if jitter == 0 {
            0
        } else {
            self.rng_draws += 1;
            self.rng.random_range(0..=jitter)
        };
        let latency = self.cfg.net.base_latency + SimDuration::from_micros(extra);
        self.clock += latency;
        self.charge(latency, 1);
        self.counters.delivered += 1;
        self.counters.bytes_delivered += bytes as u64;
        self.nodes[from.index()].bytes_out += bytes as u64;
        self.nodes[to.index()].bytes_in += bytes as u64;
        let at = self.clock;
        self.trace(TraceEvent::Deliver {
            at,
            from,
            to,
            bytes,
            action,
        });
        Ok(latency)
    }

    /// Ticks down `from`'s scripted crash-after-sends budget by one attempt
    /// and crashes the node when it reaches zero.
    fn consume_send_budget(&mut self, from: NodeId) {
        if let Some(k) = self.nodes[from.index()].crash_after_sends {
            if k <= 1 {
                self.crash_node(from);
            } else {
                self.nodes[from.index()].crash_after_sends = Some(k - 1);
            }
        }
    }

    fn block_pair(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = norm_pair(a, b);
        if self.blocked.insert((a, b)) {
            let at = self.clock;
            self.trace(TraceEvent::Partition { at, a, b });
        }
    }

    fn unblock_pair(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = norm_pair(a, b);
        if self.blocked.remove(&(a, b)) {
            let at = self.clock;
            self.trace(TraceEvent::Heal { at, a, b });
        }
    }

    fn crash_node(&mut self, n: NodeId) {
        if self.nodes[n.index()].up {
            self.nodes[n.index()].up = false;
            self.nodes[n.index()].epoch += 1;
            self.nodes[n.index()].crash_after_sends = None;
            self.counters.crashes += 1;
            let at = self.clock;
            self.trace(TraceEvent::Crash { at, node: n });
        }
    }

    fn charge(&mut self, d: SimDuration, msgs: u64) {
        if let Some(acct) = self.active_account {
            let entry = self.accounts.entry(acct).or_insert(Cost::ZERO);
            entry.latency += d;
            entry.messages += msgs;
        }
    }

    fn trace(&mut self, ev: TraceEvent) {
        if let Some(ring) = self.trace.as_mut() {
            ring.push(ev);
        }
    }
}

fn norm_pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;

    fn sim3() -> Sim {
        Sim::new(SimConfig::new(1).with_nodes(3))
    }

    #[test]
    fn deliver_advances_clock_and_counts() {
        let sim = sim3();
        let before = sim.now();
        let lat = sim
            .deliver(NodeId::new(0), NodeId::new(1), 100)
            .expect("delivery");
        assert!(lat >= sim.config().net.base_latency);
        assert_eq!(sim.now(), before + lat);
        let c = sim.counters();
        assert_eq!(c.delivered, 1);
        assert_eq!(c.bytes_delivered, 100);
    }

    #[test]
    fn node_traffic_attributes_delivered_bytes_only() {
        let sim = sim3();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        sim.deliver(a, b, 100).expect("delivery");
        sim.deliver(b, a, 30).expect("delivery");
        // A failed attempt counts for no one.
        sim.crash(c);
        assert!(sim.deliver(a, c, 999).is_err());
        assert_eq!(sim.node_traffic(a), (30, 100));
        assert_eq!(sim.node_traffic(b), (100, 30));
        assert_eq!(sim.node_traffic(c), (0, 0));
        // Traffic history survives a crash/recover cycle (observer data,
        // not volatile node state).
        sim.crash(b);
        sim.recover(b);
        assert_eq!(sim.node_traffic(b), (100, 30));
        // Nodes added later start at zero.
        let d = sim.add_node();
        assert_eq!(sim.node_traffic(d), (0, 0));
    }

    #[test]
    fn deliver_to_crashed_node_fails() {
        let sim = sim3();
        sim.crash(NodeId::new(1));
        assert_eq!(
            sim.deliver(NodeId::new(0), NodeId::new(1), 1),
            Err(NetError::NodeDown(NodeId::new(1)))
        );
        assert_eq!(sim.counters().to_down_node, 1);
    }

    #[test]
    fn deliver_from_crashed_node_fails() {
        let sim = sim3();
        sim.crash(NodeId::new(0));
        assert_eq!(
            sim.deliver(NodeId::new(0), NodeId::new(1), 1),
            Err(NetError::NodeDown(NodeId::new(0)))
        );
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let sim = sim3();
        let (a, b) = (NodeId::new(0), NodeId::new(2));
        sim.partition(a, b);
        assert!(sim.is_partitioned(a, b));
        assert!(matches!(
            sim.deliver(a, b, 1),
            Err(NetError::Partitioned { .. })
        ));
        assert!(matches!(
            sim.deliver(b, a, 1),
            Err(NetError::Partitioned { .. })
        ));
        // unrelated pair unaffected
        assert!(sim.deliver(a, NodeId::new(1), 1).is_ok());
        sim.heal(a, b);
        assert!(sim.deliver(a, b, 1).is_ok());
    }

    #[test]
    fn partition_groups_blocks_cross_traffic() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(4));
        let ns = sim.nodes();
        sim.partition_groups(&ns[..2], &ns[2..]);
        assert!(sim.deliver(ns[0], ns[1], 1).is_ok());
        assert!(sim.deliver(ns[2], ns[3], 1).is_ok());
        assert!(sim.deliver(ns[0], ns[2], 1).is_err());
        sim.heal_all();
        assert!(sim.deliver(ns[0], ns[2], 1).is_ok());
    }

    #[test]
    fn drops_follow_probability() {
        let sim = Sim::new(
            SimConfig::new(7)
                .with_nodes(2)
                .with_net(NetConfig::default().with_drop_probability(0.5)),
        );
        let mut dropped = 0;
        for _ in 0..200 {
            if sim.deliver(NodeId::new(0), NodeId::new(1), 1) == Err(NetError::Dropped) {
                dropped += 1;
            }
        }
        // 200 Bernoulli(0.5) trials: overwhelmingly within [60, 140].
        assert!((60..=140).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn crash_bumps_epoch_and_recover_does_not() {
        let sim = sim3();
        let n = NodeId::new(1);
        assert_eq!(sim.epoch(n), 0);
        sim.crash(n);
        sim.crash(n); // idempotent
        assert_eq!(sim.epoch(n), 1);
        assert!(!sim.is_up(n));
        sim.recover(n);
        sim.recover(n); // idempotent
        assert!(sim.is_up(n));
        assert_eq!(sim.epoch(n), 1);
        assert_eq!(sim.counters().crashes, 1);
        assert_eq!(sim.counters().recoveries, 1);
    }

    #[test]
    fn crash_after_sends_fires_at_exact_count() {
        let sim = sim3();
        let b = NodeId::new(1);
        sim.crash_after_sends(b, 2);
        assert!(sim.deliver(b, NodeId::new(0), 1).is_ok());
        assert!(sim.is_up(b));
        assert!(sim.deliver(b, NodeId::new(2), 1).is_ok());
        assert!(!sim.is_up(b), "b must crash after its second send");
        assert!(sim.deliver(b, NodeId::new(0), 1).is_err());
    }

    /// A message to a crashed receiver must always be attributed to
    /// `to_down_node` — even with `drop_probability = 1.0`, when every
    /// message that reaches the drop roll is lost. The receiver check comes
    /// first precisely so the oracle's loss taxonomy stays causal.
    #[test]
    fn crashed_receiver_wins_attribution_over_certain_drop() {
        let sim = Sim::new(
            SimConfig::new(5)
                .with_nodes(3)
                .with_net(NetConfig::default().with_drop_probability(1.0))
                .with_trace(),
        );
        sim.crash(NodeId::new(1));
        assert_eq!(
            sim.deliver(NodeId::new(0), NodeId::new(1), 1),
            Err(NetError::NodeDown(NodeId::new(1)))
        );
        let c = sim.counters();
        assert_eq!(c.to_down_node, 1, "attributed to the crashed receiver");
        assert_eq!(c.dropped, 0, "never randomly reclassified as dropped");
        // An up receiver still sees the certain drop.
        assert_eq!(
            sim.deliver(NodeId::new(0), NodeId::new(2), 1),
            Err(NetError::Dropped)
        );
        assert_eq!(sim.counters().dropped, 1);
        let trace = sim.take_trace().expect("tracing enabled");
        let causes: Vec<&str> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Lost { cause, .. } => Some(*cause),
                _ => None,
            })
            .collect();
        assert_eq!(causes, vec!["receiver down", "dropped"]);
    }

    /// Messages to a down receiver consume no RNG draw: the run's random
    /// stream is identical whether or not down-receiver traffic happened.
    #[test]
    fn down_receiver_traffic_consumes_no_rng_draw() {
        let run = |send_to_down: bool| {
            let sim = Sim::new(
                SimConfig::new(21)
                    .with_nodes(3)
                    .with_net(NetConfig::default().with_drop_probability(0.5)),
            );
            sim.crash(NodeId::new(2));
            if send_to_down {
                for _ in 0..10 {
                    assert_eq!(
                        sim.deliver(NodeId::new(0), NodeId::new(2), 1),
                        Err(NetError::NodeDown(NodeId::new(2)))
                    );
                }
            }
            (0..50)
                .map(|_| sim.deliver(NodeId::new(0), NodeId::new(1), 1).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    /// The scripted "crash after k sends" fires at the k-th send *attempt*:
    /// a lossy network (here `drop_probability = 1.0`, so no send ever
    /// succeeds) must not postpone the scripted crash.
    #[test]
    fn crash_after_sends_counts_failed_attempts() {
        let sim = Sim::new(
            SimConfig::new(7)
                .with_nodes(3)
                .with_net(NetConfig::default().with_drop_probability(1.0)),
        );
        let b = NodeId::new(1);
        sim.crash_after_sends(b, 2);
        assert_eq!(sim.deliver(b, NodeId::new(0), 1), Err(NetError::Dropped));
        assert!(sim.is_up(b), "one attempt left in the budget");
        assert_eq!(sim.deliver(b, NodeId::new(2), 1), Err(NetError::Dropped));
        assert!(!sim.is_up(b), "b crashes at its second send attempt");
    }

    #[test]
    fn crash_after_sends_counts_partitioned_and_down_receiver_attempts() {
        let sim = sim3();
        let b = NodeId::new(1);
        sim.partition(b, NodeId::new(0));
        sim.crash(NodeId::new(2));
        sim.crash_after_sends(b, 3);
        assert!(matches!(
            sim.deliver(b, NodeId::new(0), 1),
            Err(NetError::Partitioned { .. })
        ));
        assert!(sim.is_up(b));
        assert_eq!(
            sim.deliver(b, NodeId::new(2), 1),
            Err(NetError::NodeDown(NodeId::new(2)))
        );
        assert!(sim.is_up(b));
        sim.heal(b, NodeId::new(0));
        assert!(sim.deliver(b, NodeId::new(0), 1).is_ok());
        assert!(!sim.is_up(b), "third attempt exhausts the budget");
    }

    /// Attempts refused because the *sender* is down are not sends: they
    /// must not tick an armed budget (the node is already crashed anyway,
    /// but the recovered node must come back disarmed).
    #[test]
    fn recover_disarms_a_pending_send_budget() {
        let sim = sim3();
        let b = NodeId::new(1);
        sim.crash_after_sends(b, 5);
        sim.recover(b); // up + armed → disarm
        for i in 0..10 {
            assert!(sim.deliver(b, NodeId::new(i % 2 * 2), 1).is_ok());
        }
        assert!(sim.is_up(b), "recover cancelled the scripted fault point");
    }

    #[test]
    fn accounts_charge_only_active_client() {
        let sim = sim3();
        sim.account_reset(1);
        sim.account_reset(2);
        sim.set_active_account(Some(1));
        sim.deliver(NodeId::new(0), NodeId::new(1), 1).unwrap();
        sim.set_active_account(Some(2));
        sim.deliver(NodeId::new(0), NodeId::new(1), 1).unwrap();
        sim.deliver(NodeId::new(0), NodeId::new(1), 1).unwrap();
        sim.set_active_account(None);
        sim.deliver(NodeId::new(0), NodeId::new(1), 1).unwrap();
        assert_eq!(sim.account_cost(1).messages, 1);
        assert_eq!(sim.account_cost(2).messages, 2);
        assert!(sim.account_cost(1).latency > SimDuration::ZERO);
    }

    #[test]
    fn charge_timeout_advances_clock_and_counts() {
        let sim = sim3();
        sim.account_reset(9);
        sim.set_active_account(Some(9));
        let before = sim.now();
        sim.charge_timeout();
        assert_eq!(sim.now(), before + sim.config().net.rpc_timeout);
        assert_eq!(sim.counters().timeouts, 1);
        assert_eq!(sim.account_cost(9).messages, 1);
    }

    #[test]
    fn schedule_fires_in_time_order() {
        let sim = sim3();
        sim.schedule(
            SimTime::from_micros(100),
            ScheduledEvent::Crash(NodeId::new(2)),
        );
        sim.schedule(SimTime::from_micros(50), ScheduledEvent::Custom(7));
        assert!(sim.run_due_events().is_empty(), "nothing due at t=0");
        sim.advance(SimDuration::from_micros(60));
        assert_eq!(sim.run_due_events(), vec![ScheduledEvent::Custom(7)]);
        assert!(sim.is_up(NodeId::new(2)));
        sim.advance(SimDuration::from_micros(60));
        assert_eq!(
            sim.run_due_events(),
            vec![ScheduledEvent::Crash(NodeId::new(2))]
        );
        assert!(!sim.is_up(NodeId::new(2)));
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let sim = sim3();
        sim.advance(SimDuration::from_micros(500));
        sim.schedule_in(SimDuration::from_micros(10), ScheduledEvent::Custom(1));
        assert_eq!(sim.next_event_at(), Some(SimTime::from_micros(510)));
    }

    #[test]
    fn trace_records_when_enabled() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(2).with_trace());
        sim.deliver(NodeId::new(0), NodeId::new(1), 5).unwrap();
        sim.crash(NodeId::new(1));
        sim.note("checkpoint");
        let trace = sim.take_trace().expect("tracing enabled");
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace[0], TraceEvent::Deliver { .. }));
        assert!(matches!(trace[1], TraceEvent::Crash { .. }));
        assert!(matches!(trace[2], TraceEvent::Note { .. }));
        // take_trace drains
        assert_eq!(sim.take_trace().expect("still enabled").len(), 0);
    }

    #[test]
    fn trace_disabled_returns_none() {
        let sim = sim3();
        assert!(sim.take_trace().is_none());
        assert_eq!(sim.trace_dropped(), 0);
    }

    #[test]
    fn trace_ring_caps_retained_events_and_counts_drops() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(2).with_trace_capacity(3));
        for i in 0..7 {
            sim.note(format!("n{i}"));
        }
        assert_eq!(sim.trace_dropped(), 4);
        let trace = sim.take_trace().expect("tracing enabled");
        assert_eq!(trace.len(), 3, "ring keeps only the newest capacity");
        // The survivors are the most recent events, in arrival order.
        let texts: Vec<String> = trace
            .iter()
            .map(|e| match e {
                TraceEvent::Note { text, .. } => text.clone(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(texts, vec!["n4", "n5", "n6"]);
        // The dropped count survives the drain; the drained ring refills.
        assert_eq!(sim.trace_dropped(), 4);
        sim.note("later");
        assert_eq!(sim.take_trace().expect("still enabled").len(), 1);
    }

    #[test]
    fn message_trace_events_carry_the_active_action() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(3).with_trace());
        sim.set_active_action(Some(42));
        sim.deliver(NodeId::new(0), NodeId::new(1), 5).unwrap();
        sim.crash(NodeId::new(2));
        let _ = sim.deliver(NodeId::new(0), NodeId::new(2), 5);
        sim.set_active_action(None);
        sim.deliver(NodeId::new(0), NodeId::new(1), 5).unwrap();
        assert_eq!(sim.active_action(), None);
        let trace = sim.take_trace().expect("tracing enabled");
        let actions: Vec<Option<u64>> = trace.iter().map(TraceEvent::action).collect();
        // Deliver(42), Crash(None), Lost(42), Deliver(None).
        assert_eq!(actions, vec![Some(42), None, Some(42), None]);
    }

    /// The draw counter advances with every consumed random value — and
    /// only then (a lossless, jitter-free delivery draws once, for the
    /// jitter-less path nothing; tracing draws nothing).
    #[test]
    fn rng_draws_count_consumed_values() {
        let sim = sim3();
        assert_eq!(sim.rng_draws(), 0);
        let _ = sim.random_f64();
        let _ = sim.random_below(10);
        assert_eq!(sim.rng_draws(), 2);
        let mut v: Vec<u32> = (0..5).collect();
        sim.shuffle(&mut v);
        assert_eq!(sim.rng_draws(), 6, "Fisher–Yates draws n-1 times");
        // Default net has jitter: one draw per successful delivery, none
        // for the drop roll while drop_probability is 0.
        sim.deliver(NodeId::new(0), NodeId::new(1), 1).unwrap();
        assert_eq!(sim.rng_draws(), 7);
    }

    #[test]
    fn partition_and_heal_are_traced_once_per_pair() {
        let sim = Sim::new(SimConfig::new(1).with_nodes(4).with_trace());
        let ns = sim.nodes();
        sim.partition(ns[3], ns[0]); // stored with the smaller id first
        sim.partition(ns[0], ns[3]); // already blocked: no second event
        sim.partition_groups(&ns[..2], &ns[2..]);
        sim.heal(ns[0], ns[2]);
        sim.heal(ns[0], ns[2]); // already healed: no second event
        sim.heal_all();
        let trace = sim.take_trace().expect("tracing enabled");
        let partitions: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Partition { .. }))
            .collect();
        let heals: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Heal { .. }))
            .collect();
        // 0-3 once, then the three *new* cross pairs (0-2, 1-2, 1-3).
        assert_eq!(partitions.len(), 4);
        // Every blocked pair healed exactly once.
        assert_eq!(heals.len(), 4);
        assert!(matches!(
            partitions[0],
            TraceEvent::Partition { a, b, .. } if *a == ns[0] && *b == ns[3]
        ));
    }

    /// Every `Lost { cause: "partitioned" }` trace entry must be preceded by
    /// a `Partition` event for that pair with no intervening `Heal` — i.e.
    /// the trace explains every [`NetError::Partitioned`] loss.
    #[test]
    fn partitioned_losses_line_up_with_partition_trace_events() {
        let sim = Sim::new(SimConfig::new(3).with_nodes(3).with_trace());
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        sim.partition(a, b);
        assert_eq!(
            sim.deliver(a, b, 1),
            Err(NetError::Partitioned { from: a, to: b })
        );
        sim.heal(a, b);
        sim.deliver(a, b, 1).expect("healed");
        sim.partition(b, c);
        assert_eq!(
            sim.deliver(c, b, 1),
            Err(NetError::Partitioned { from: c, to: b })
        );
        let trace = sim.take_trace().expect("tracing enabled");
        let mut blocked: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut partitioned_losses = 0;
        for ev in &trace {
            match *ev {
                TraceEvent::Partition { a, b, .. } => {
                    blocked.insert(norm_pair(a, b));
                }
                TraceEvent::Heal { a, b, .. } => {
                    blocked.remove(&norm_pair(a, b));
                }
                TraceEvent::Lost {
                    from,
                    to,
                    cause: "partitioned",
                    ..
                } => {
                    partitioned_losses += 1;
                    assert!(
                        blocked.contains(&norm_pair(from, to)),
                        "loss on {from}->{to} not explained by a Partition event"
                    );
                }
                TraceEvent::Deliver { from, to, .. } => {
                    assert!(
                        !blocked.contains(&norm_pair(from, to)),
                        "delivery on a partitioned pair {from}->{to}"
                    );
                }
                _ => {}
            }
        }
        assert_eq!(partitioned_losses, 2, "both losses appear in the trace");
    }

    #[test]
    fn drop_probability_can_be_ramped_mid_run() {
        let sim = Sim::new(SimConfig::new(7).with_nodes(2));
        assert_eq!(sim.drop_probability(), 0.0);
        for _ in 0..50 {
            assert!(sim.deliver(NodeId::new(0), NodeId::new(1), 1).is_ok());
        }
        sim.set_drop_probability(1.0);
        assert_eq!(
            sim.deliver(NodeId::new(0), NodeId::new(1), 1),
            Err(NetError::Dropped)
        );
        sim.set_drop_probability(0.0);
        assert!(sim.deliver(NodeId::new(0), NodeId::new(1), 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn set_drop_probability_validates_range() {
        sim3().set_drop_probability(1.5);
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| {
            let sim = Sim::new(
                SimConfig::new(seed)
                    .with_nodes(2)
                    .with_net(NetConfig::default().with_drop_probability(0.3)),
            );
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                outcomes.push(sim.deliver(NodeId::new(0), NodeId::new(1), 1).is_ok());
            }
            (outcomes, sim.now())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn add_node_extends_world() {
        let sim = sim3();
        let n = sim.add_node();
        assert_eq!(n, NodeId::new(3));
        assert_eq!(sim.num_nodes(), 4);
        assert!(sim.is_up(n));
        assert_eq!(sim.nodes().len(), 4);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let sim = Sim::new(SimConfig::new(5).with_nodes(1));
        let mut v: Vec<u32> = (0..10).collect();
        sim.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let sim = sim3();
        assert!(!sim.chance(0.0));
        assert!(sim.chance(1.0));
    }
}
