//! The zero-copy wire layer: shared byte buffers and reusable codecs.
//!
//! Every protocol layer in `groupview` moves encoded bytes between nodes:
//! operations multicast to replica groups, member replies, and checkpoint
//! snapshots. Before this module existed each hop built a fresh `Vec<u8>`
//! and each fan-out cloned the payload per member — per-op allocation cost
//! on the hot path the paper's evaluation (§4) cares about.
//!
//! Three pieces remove those costs:
//!
//! * [`Bytes`] — a cheaply-cloneable, reference-counted, sliceable view of
//!   an immutable byte buffer. Cloning bumps a refcount; [`Bytes::slice`]
//!   narrows the view without copying. A multicast can hand the *same*
//!   buffer to every member.
//! * [`WireEncoder`] — a scratch-buffer pool. Encoding borrows a retired
//!   buffer, writes the frame, and freezes it into a [`Bytes`]; when the
//!   last clone of that `Bytes` is dropped, the buffer's storage returns to
//!   the pool. Steady-state encoding allocates nothing.
//! * [`Codec`] — explicit encode/decode pairs for each frame type (group
//!   messages and member replies in `groupview-replication`, snapshot
//!   frames in `groupview-store`). Decoders receive a [`Bytes`] so they can
//!   return zero-copy slices of the incoming frame.
//!
//! Buffer-ownership rules are documented in `docs/WIRE.md`. Allocation
//! behaviour is observable through [`stats`] (a per-thread counter: each
//! shard world runs on exactly one OS thread, so a shard's counters are
//! exact for its own traffic): benches report per-operation buffer
//! allocations, and property tests assert that `clone`/`slice` never
//! allocate or copy.
//!
//! `Bytes` and `WireEncoder` are `Send + Sync` (atomic refcounts,
//! spin-locked pool): they are the payload types that cross shard
//! boundaries in the sharded runtime (`docs/SHARDING.md`). A frame encoded
//! on one shard thread and dropped on another still returns its storage to
//! the originating pool. Per-shard world state stays single-threaded — the
//! only synchronisation on the hot path is the uncontended pool spinlock
//! and the refcount.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// Fixed per-message framing overhead charged by transport layers, in
/// bytes (addressing, sequence numbers, checksums). Cost accounting only —
/// no header bytes are actually materialised.
pub const FRAME_OVERHEAD_BYTES: usize = 16;

/// Retired scratch buffers kept per [`WireEncoder`]; excess storage is
/// dropped rather than hoarded. Sized for the largest transient working
/// set a batched invocation pins at once: at batch size 64 a client holds
/// 64 op frames plus the batch frame while the coordinator holds 64 reply
/// frames plus the aggregate reply (~130 live buffers). A cap below that
/// made every batch=64 round-trip fall off the pool and re-allocate, which
/// is exactly the throughput knee the trajectory bench measured at 32.
const MAX_POOLED_BUFFERS: usize = 192;

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counters for wire-buffer traffic, used by benches and property tests to
/// make per-op allocation behaviour visible (the ROADMAP's "hot-path
/// allocation" item).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Fresh backing buffers created (pool misses, [`Bytes::from`]
    /// conversions, [`Bytes::copy_from_slice`]).
    pub buffer_allocs: u64,
    /// Encodes served from a pooled scratch buffer instead of a fresh one.
    pub pool_reuses: u64,
    /// Payload bytes memcpy'd into wire buffers by encoders.
    pub bytes_copied: u64,
}

impl WireStats {
    /// Component-wise difference since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: WireStats) -> WireStats {
        WireStats {
            buffer_allocs: self.buffer_allocs - earlier.buffer_allocs,
            pool_reuses: self.pool_reuses - earlier.pool_reuses,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
        }
    }
}

impl fmt::Display for WireStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} reuses={} copied={}B",
            self.buffer_allocs, self.pool_reuses, self.bytes_copied
        )
    }
}

thread_local! {
    static WIRE_STATS: Cell<WireStats> = const { Cell::new(WireStats {
        buffer_allocs: 0,
        pool_reuses: 0,
        bytes_copied: 0,
    }) };
}

/// Snapshot of this thread's wire counters (monotonic; diff with
/// [`WireStats::since`]).
pub fn stats() -> WireStats {
    WIRE_STATS.with(Cell::get)
}

fn bump(f: impl FnOnce(&mut WireStats)) {
    WIRE_STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// Backing storage of a [`Bytes`]: a pooled vector or borrowed static data.
#[derive(Clone)]
enum Backing {
    /// Borrowed `'static` data (literals, empty buffers): free to create.
    Static(&'static [u8]),
    /// Shared ownership of a heap buffer, possibly pool-managed. The
    /// refcount is atomic so frames can cross shard threads.
    Shared(Arc<PooledBuf>),
}

/// The shared scratch-buffer free list behind a [`WireEncoder`]. The lock
/// is only ever contended when a frame encoded on one shard thread is
/// dropped on another; shard-local traffic (the hot path — every encode
/// and every frame drop) takes it uncontended, which is why it is a
/// spinlock rather than a `std::sync::Mutex`: the critical section is a
/// `Vec` push/pop (single-digit nanoseconds), so an uncontended CAS beats
/// a futex round trip, and the hot path pays for the lock hundreds of
/// times per batched invocation.
type Pool = SpinLock<Vec<Vec<u8>>>;

fn lock_pool(pool: &Pool) -> SpinGuard<'_, Vec<Vec<u8>>> {
    pool.lock()
}

/// A minimal test-and-set spinlock. No poisoning: the free list holds only
/// empty retired buffers, so a panic mid-push cannot leave it inconsistent,
/// and buffer reclamation must keep working while a shard thread unwinds.
#[derive(Default)]
struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: the lock hands out exactly one guard at a time (the CAS below),
// so `&SpinLock<T>` grants the same access a `Mutex<T>` would.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    fn lock(&self) -> SpinGuard<'_, T> {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        SpinGuard { lock: self }
    }
}

struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the lock.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A heap buffer that returns its storage to the owning pool (if any) when
/// the last [`Bytes`] referencing it is dropped — regardless of which
/// thread drops it.
struct PooledBuf {
    data: Vec<u8>,
    pool: Weak<Pool>,
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            let mut pool = lock_pool(&pool);
            if pool.len() < MAX_POOLED_BUFFERS {
                let mut data = std::mem::take(&mut self.data);
                data.clear();
                pool.push(data);
            }
        }
    }
}

/// A cheaply-cloneable, reference-counted, sliceable byte buffer.
///
/// `Bytes` is the unit of payload ownership across the wire layer: RPC
/// payloads, multicast messages, member replies, and stored object states
/// all carry one. Cloning bumps a reference count and [`Bytes::slice`]
/// narrows the view in place — neither touches the underlying bytes, so a
/// buffer encoded once can fan out to any number of receivers and be
/// re-sliced by every decoder without a single copy.
///
/// The buffer is immutable once frozen; produce new contents through a
/// [`WireEncoder`] (pooled) or [`Bytes::from`] (takes ownership of a
/// `Vec<u8>`).
#[derive(Clone)]
pub struct Bytes {
    backing: Backing,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Free: no allocation.
    pub const fn new() -> Bytes {
        Bytes {
            backing: Backing::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps borrowed `'static` data (byte-string literals) without
    /// copying or allocating.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            backing: Backing::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies a slice into a fresh buffer (counted as one allocation plus
    /// a copy). Prefer a [`WireEncoder`] on hot paths.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        bump(|s| {
            s.buffer_allocs += 1;
            s.bytes_copied += data.len() as u64;
        });
        Bytes::from_unpooled(data.to_vec())
    }

    fn from_unpooled(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            backing: Backing::Shared(Arc::new(PooledBuf {
                data,
                pool: Weak::new(),
            })),
            start: 0,
            end,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        let all: &[u8] = match &self.backing {
            Backing::Static(s) => s,
            Backing::Shared(arc) => &arc.data,
        };
        &all[self.start..self.end]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A narrower view of the same buffer — shares storage, never copies.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds of this view.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            backing: self.backing.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Wire size including the fixed framing overhead, for cost accounting.
    pub fn wire_size(&self) -> usize {
        self.len() + FRAME_OVERHEAD_BYTES
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

/// Takes ownership of a `Vec<u8>` (no copy; counted as one buffer
/// allocation entering the wire layer).
impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        bump(|s| s.buffer_allocs += 1);
        Bytes::from_unpooled(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

// ---------------------------------------------------------------------------
// WireEncoder
// ---------------------------------------------------------------------------

/// A scratch-buffer pool for building [`Bytes`] frames without steady-state
/// allocation.
///
/// [`WireEncoder::encode_with`] pops a retired buffer (or allocates on a
/// cold start), hands it to the closure to fill, and freezes the result
/// into a [`Bytes`]. When the last clone of that `Bytes` drops, the
/// buffer's storage returns to this pool. A hot loop that encodes, fans
/// out, and releases each frame therefore reuses the same few buffers
/// forever.
///
/// The handle is cheap to clone; clones share one pool. The encoder is
/// `Send + Sync`: pool access is spin-locked, so frames released on
/// another shard thread reclaim into the same pool.
#[derive(Clone, Default)]
pub struct WireEncoder {
    pool: Arc<Pool>,
}

impl fmt::Debug for WireEncoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireEncoder")
            .field("pooled", &self.pooled())
            .finish()
    }
}

impl WireEncoder {
    /// Creates an encoder with an empty pool.
    pub fn new() -> WireEncoder {
        WireEncoder::default()
    }

    /// Retired buffers currently available for reuse.
    pub fn pooled(&self) -> usize {
        lock_pool(&self.pool).len()
    }

    /// Builds one frame: `fill` writes the encoding into a scratch buffer,
    /// which is then frozen into an immutable [`Bytes`]. The buffer's
    /// storage returns to the pool once every clone of the returned
    /// `Bytes` is gone.
    pub fn encode_with(&self, fill: impl FnOnce(&mut Vec<u8>)) -> Bytes {
        let popped = lock_pool(&self.pool).pop();
        let mut data = match popped {
            Some(buf) => {
                bump(|s| s.pool_reuses += 1);
                buf
            }
            None => {
                bump(|s| s.buffer_allocs += 1);
                Vec::new()
            }
        };
        debug_assert!(data.is_empty(), "pooled scratch must be cleared");
        fill(&mut data);
        bump(|s| s.bytes_copied += data.len() as u64);
        let end = data.len();
        Bytes {
            backing: Backing::Shared(Arc::new(PooledBuf {
                data,
                pool: Arc::downgrade(&self.pool),
            })),
            start: 0,
            end,
        }
    }

    /// Encodes `item` with the given [`Codec`] into a pooled frame.
    pub fn encode<C: Codec>(&self, item: &C::Item) -> Bytes {
        self.encode_with(|buf| C::encode_into(item, buf))
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// An explicit encode/decode pair for one wire-frame type.
///
/// Encoding appends to a caller-supplied buffer so it composes with the
/// [`WireEncoder`] pool; decoding receives the frame as a [`Bytes`] so
/// implementations can return zero-copy slices of it (payload fields of
/// decoded items should be `Bytes::slice`s, not fresh vectors).
///
/// Implementations live next to the types they serialise: group messages
/// and member replies in `groupview-replication`, snapshot frames in
/// `groupview-store`.
pub trait Codec {
    /// The in-memory type this codec frames.
    type Item;

    /// Appends the encoding of `item` to `buf`.
    fn encode_into(item: &Self::Item, buf: &mut Vec<u8>);

    /// Decodes a frame, returning `None` for malformed input. Payload
    /// fields must be zero-copy slices of `bytes`.
    fn decode(bytes: &Bytes) -> Option<Self::Item>;

    /// Encodes `item` into a pooled frame (convenience for
    /// [`WireEncoder::encode`]).
    fn encode(encoder: &WireEncoder, item: &Self::Item) -> Bytes
    where
        Self: Sized,
    {
        encoder.encode::<Self>(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_static_bytes_are_free() {
        let before = stats();
        let empty = Bytes::new();
        let lit = Bytes::from_static(b"hello");
        assert!(empty.is_empty());
        assert_eq!(lit, b"hello");
        assert_eq!(lit.len(), 5);
        assert_eq!(stats(), before, "no allocation for static data");
    }

    #[test]
    fn from_vec_takes_ownership_and_counts_one_alloc() {
        let before = stats();
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, [1u8, 2, 3]);
        let d = stats().since(before);
        assert_eq!(d.buffer_allocs, 1);
        assert_eq!(d.bytes_copied, 0, "ownership transfer, not a copy");
    }

    #[test]
    fn clone_and_slice_share_storage_without_copying() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let before = stats();
        let c = b.clone();
        let s = b.slice(2..6);
        let s2 = s.slice(1..);
        assert_eq!(stats(), before, "clone/slice must not allocate or copy");
        assert_eq!(c, b);
        assert_eq!(s, [2u8, 3, 4, 5]);
        assert_eq!(s2, [3u8, 4, 5]);
        // The slices alias the same storage as the original.
        assert_eq!(s.as_slice().as_ptr(), b.as_slice()[2..].as_ptr());
    }

    #[test]
    fn slice_of_static_and_full_range_forms() {
        let b = Bytes::from_static(b"abcdef");
        assert_eq!(b.slice(..), b"abcdef");
        assert_eq!(b.slice(..3), b"abc");
        assert_eq!(b.slice(3..), b"def");
        assert_eq!(b.slice(1..=2), b"bc");
        assert!(b.slice(6..).is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from_static(b"ab").slice(..3);
    }

    #[test]
    fn equality_across_representations() {
        let b = Bytes::from(b"xy".to_vec());
        assert_eq!(b, Bytes::from_static(b"xy"));
        assert_eq!(b, *b"xy");
        assert_eq!(b, b"xy");
        assert_eq!(b, &b"xy"[..]);
        assert_eq!(b, b"xy".to_vec());
        assert_eq!(b"xy".to_vec(), b);
        assert_ne!(b, Bytes::from_static(b"xz"));
        assert!(!format!("{b:?}").is_empty());
    }

    #[test]
    fn encoder_reuses_returned_buffers() {
        let enc = WireEncoder::new();
        let before = stats();
        let first = enc.encode_with(|buf| buf.extend_from_slice(b"frame-1"));
        assert_eq!(first, b"frame-1");
        assert_eq!(stats().since(before).buffer_allocs, 1, "cold start");
        drop(first); // storage returns to the pool
        assert_eq!(enc.pooled(), 1);
        let before = stats();
        for i in 0..100u8 {
            let frame = enc.encode_with(|buf| buf.extend_from_slice(&[i; 9]));
            assert_eq!(frame.len(), 9);
            drop(frame);
        }
        let d = stats().since(before);
        assert_eq!(d.buffer_allocs, 0, "steady state allocates nothing");
        assert_eq!(d.pool_reuses, 100);
    }

    #[test]
    fn pooled_storage_waits_for_the_last_clone() {
        let enc = WireEncoder::new();
        let frame = enc.encode_with(|buf| buf.extend_from_slice(b"shared"));
        let view = frame.slice(1..4);
        drop(frame);
        assert_eq!(enc.pooled(), 0, "slice still alive");
        assert_eq!(view, b"har");
        drop(view);
        assert_eq!(enc.pooled(), 1, "last reference returned the buffer");
    }

    #[test]
    fn pool_keeps_at_most_the_cap() {
        let enc = WireEncoder::new();
        let frames: Vec<Bytes> = (0..MAX_POOLED_BUFFERS + 8)
            .map(|_| enc.encode_with(|buf| buf.push(1)))
            .collect();
        drop(frames);
        assert_eq!(enc.pooled(), MAX_POOLED_BUFFERS);
    }

    #[test]
    fn pool_covers_a_batch64_round_trip_working_set() {
        // A batch of 64 ops pins ~2×64+2 live frames at once (op frames on
        // the client, reply frames on the coordinator). The cap must cover
        // that, or every batch=64 round-trip falls off the pool and
        // re-allocates — the measured trajectory knee this constant fixes.
        const { assert!(MAX_POOLED_BUFFERS >= 2 * 64 + 2) }
    }

    #[test]
    fn bytes_and_encoder_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bytes>();
        assert_send_sync::<WireEncoder>();
        assert_send_sync::<WireStats>();
    }

    #[test]
    fn frames_reclaim_across_threads() {
        // Encode on this thread, drop the last clone on another: the
        // storage must return to the originating pool (this is the path a
        // cross-shard reply takes in the sharded runtime).
        let enc = WireEncoder::new();
        let frame = enc.encode_with(|buf| buf.extend_from_slice(b"cross-shard"));
        assert_eq!(enc.pooled(), 0);
        std::thread::spawn(move || {
            assert_eq!(frame, b"cross-shard");
            drop(frame);
        })
        .join()
        .expect("receiver thread");
        assert_eq!(enc.pooled(), 1, "remote drop returned the buffer");

        // And the reverse: a worker thread reuses the reclaimed buffer
        // (pool 1 → 0) and the frame dropped here returns it again.
        let enc2 = enc.clone();
        let before = stats();
        let frame = std::thread::spawn(move || enc2.encode_with(|buf| buf.push(7)))
            .join()
            .expect("encoder thread");
        assert_eq!(frame, [7u8]);
        assert_eq!(
            stats().since(before).buffer_allocs,
            0,
            "this thread allocated nothing (the worker reused the pool)"
        );
        drop(frame);
        assert_eq!(enc.pooled(), 1);
    }

    #[test]
    fn encoder_clones_share_one_pool() {
        let enc = WireEncoder::new();
        let enc2 = enc.clone();
        drop(enc.encode_with(|buf| buf.push(7)));
        assert_eq!(enc2.pooled(), 1);
        let before = stats();
        drop(enc2.encode_with(|buf| buf.push(8)));
        assert_eq!(stats().since(before).buffer_allocs, 0);
    }

    #[test]
    fn codec_roundtrip_via_encoder() {
        struct PairCodec;
        impl Codec for PairCodec {
            type Item = (u32, Bytes);
            fn encode_into(item: &(u32, Bytes), buf: &mut Vec<u8>) {
                buf.extend_from_slice(&item.0.to_le_bytes());
                buf.extend_from_slice(&item.1);
            }
            fn decode(bytes: &Bytes) -> Option<(u32, Bytes)> {
                let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
                Some((n, bytes.slice(4..)))
            }
        }
        let enc = WireEncoder::new();
        let frame = PairCodec::encode(&enc, &(7, Bytes::from_static(b"payload")));
        let before = stats();
        let (n, payload) = PairCodec::decode(&frame).expect("decode");
        assert_eq!(stats(), before, "decode must be zero-copy");
        assert_eq!(n, 7);
        assert_eq!(payload, b"payload");
        assert!(PairCodec::decode(&Bytes::from_static(b"xy")).is_none());
    }

    #[test]
    fn wire_size_adds_frame_overhead() {
        assert_eq!(Bytes::new().wire_size(), FRAME_OVERHEAD_BYTES);
        assert_eq!(
            Bytes::from_static(b"1234").wire_size(),
            4 + FRAME_OVERHEAD_BYTES
        );
    }

    #[test]
    fn stats_display_and_diff() {
        let d = WireStats {
            buffer_allocs: 2,
            pool_reuses: 3,
            bytes_copied: 10,
        }
        .since(WireStats {
            buffer_allocs: 1,
            pool_reuses: 1,
            bytes_copied: 4,
        });
        assert_eq!(d.buffer_allocs, 1);
        assert_eq!(d.pool_reuses, 2);
        assert_eq!(d.bytes_copied, 6);
        assert!(d.to_string().contains("allocs=1"));
    }
}
