//! Cost accounting and network counters.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Accumulated cost of some activity: virtual latency plus message count.
///
/// Costs are attributed to *accounts* (see [`crate::Sim::set_active_account`])
/// so that when a workload driver interleaves many logical clients, each
/// client's operation latency reflects only the messages *that client* sent
/// or waited for, not the global serialized clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// Total virtual latency charged.
    pub latency: SimDuration,
    /// Number of messages charged (delivered or timed out).
    pub messages: u64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        latency: SimDuration::ZERO,
        messages: 0,
    };

    /// Adds another cost into this one.
    pub fn absorb(&mut self, other: Cost) {
        self.latency += other.latency;
        self.messages += other.messages;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} msgs", self.latency, self.messages)
    }
}

/// Global network statistics for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NetCounters {
    /// Messages successfully delivered.
    pub delivered: u64,
    /// Messages lost to random drops.
    pub dropped: u64,
    /// Messages refused because the destination was down.
    pub to_down_node: u64,
    /// Messages refused because of a partition.
    pub partitioned: u64,
    /// RPC timeouts charged to callers.
    pub timeouts: u64,
    /// Node crashes (both scheduled and scripted).
    pub crashes: u64,
    /// Node recoveries.
    pub recoveries: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

impl NetCounters {
    /// Total send attempts, successful or not.
    pub fn attempts(&self) -> u64 {
        self.delivered + self.dropped + self.to_down_node + self.partitioned
    }
}

impl fmt::Display for NetCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered={} dropped={} to_down={} partitioned={} timeouts={} crashes={} recoveries={}",
            self.delivered,
            self.dropped,
            self.to_down_node,
            self.partitioned,
            self.timeouts,
            self.crashes,
            self.recoveries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_absorb_adds_both_fields() {
        let mut a = Cost {
            latency: SimDuration::from_micros(10),
            messages: 2,
        };
        a.absorb(Cost {
            latency: SimDuration::from_micros(5),
            messages: 1,
        });
        assert_eq!(a.latency.as_micros(), 15);
        assert_eq!(a.messages, 3);
    }

    #[test]
    fn counters_attempts_sums_all_outcomes() {
        let c = NetCounters {
            delivered: 5,
            dropped: 2,
            to_down_node: 1,
            partitioned: 1,
            ..Default::default()
        };
        assert_eq!(c.attempts(), 9);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!Cost::ZERO.to_string().is_empty());
        assert!(!NetCounters::default().to_string().is_empty());
    }
}
