//! Synchronous RPC over the simulated network.
//!
//! The paper's system invokes operations on remote objects via RPC (§2.2).
//! The helper here preserves the failure modes a real RPC system exhibits —
//! in particular the asymmetry that matters for replica consistency: the
//! server may *execute* the request and then fail (or have its reply lost)
//! before the client hears back, leaving the client with only a timeout and
//! no knowledge of whether the operation happened.

use crate::error::NetError;
use crate::ids::NodeId;
use crate::wire::Bytes;
use crate::world::Sim;

impl Sim {
    /// Performs a synchronous RPC from `from` to `to`.
    ///
    /// The `handler` closure is the server-side implementation; it runs only
    /// if the request is delivered. Handlers typically capture `Rc` handles
    /// to the server's state and may themselves send messages (nested RPC)
    /// or trigger scripted crashes.
    ///
    /// Timeline:
    /// 1. request message `from → to` (may fail);
    /// 2. `handler()` executes on the server;
    /// 3. if the server crashed while executing (scripted fault), the caller
    ///    times out **but the handler's effects stand**;
    /// 4. reply message `to → from` (may fail — again, effects stand).
    ///
    /// On any failure the caller is charged one RPC timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] for every failure a real caller could
    /// only observe as a timeout (request lost, server down or crashed
    /// mid-call, reply lost), and [`NetError::NodeDown`] with the *caller's*
    /// id if the caller itself is down (a programming error in drivers).
    pub fn rpc<T>(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        resp_bytes: usize,
        handler: impl FnOnce() -> T,
    ) -> Result<T, NetError> {
        if !self.is_up(from) {
            return Err(NetError::NodeDown(from));
        }
        if from == to {
            // Local invocation: no network, but the call still fails if the
            // node dies while executing the handler.
            let result = handler();
            if !self.is_up(to) {
                self.charge_timeout();
                return Err(NetError::Timeout);
            }
            return Ok(result);
        }
        if self.deliver(from, to, req_bytes).is_err() {
            self.charge_timeout();
            return Err(NetError::Timeout);
        }
        let result = handler();
        if !self.is_up(to) {
            // Server executed the call but crashed before replying.
            self.charge_timeout();
            return Err(NetError::Timeout);
        }
        if self.deliver(to, from, resp_bytes).is_err() {
            self.charge_timeout();
            return Err(NetError::Timeout);
        }
        Ok(result)
    }

    /// Like [`Sim::rpc`] but for handlers that themselves return a `Result`;
    /// flattens the two error layers into one, mapping handler errors via
    /// `From`.
    ///
    /// # Errors
    ///
    /// Returns the handler's error, or the transport error converted with
    /// `E: From<NetError>`.
    pub fn rpc_flat<T, E: From<NetError>>(
        &self,
        from: NodeId,
        to: NodeId,
        req_bytes: usize,
        resp_bytes: usize,
        handler: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        match self.rpc(from, to, req_bytes, resp_bytes, handler) {
            Ok(inner) => inner,
            Err(net) => Err(E::from(net)),
        }
    }

    /// Like [`Sim::rpc`] but carrying an actual request payload: the
    /// request cost is derived from the buffer's [`Bytes::wire_size`] and
    /// the handler receives the payload by reference — the server decodes
    /// a zero-copy view of the very buffer the client encoded, so no
    /// per-call payload vector is materialised.
    ///
    /// # Errors
    ///
    /// As [`Sim::rpc`].
    pub fn rpc_payload<T>(
        &self,
        from: NodeId,
        to: NodeId,
        req: &Bytes,
        resp_bytes: usize,
        handler: impl FnOnce(&Bytes) -> T,
    ) -> Result<T, NetError> {
        self.rpc(from, to, req.wire_size(), resp_bytes, || handler(req))
    }

    /// One-way best-effort message (no reply, no timeout charge on failure).
    ///
    /// Used for checkpoint pushes and other fire-and-forget traffic where
    /// the sender does not block.
    ///
    /// # Errors
    ///
    /// Propagates the delivery failure; the handler only ran on `Ok`.
    pub fn send_oneway(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        handler: impl FnOnce(),
    ) -> Result<(), NetError> {
        self.deliver(from, to, bytes)?;
        handler();
        Ok(())
    }

    /// Like [`Sim::send_oneway`] but carrying an actual payload buffer; the
    /// handler receives a zero-copy reference to it. One encoded frame can
    /// therefore be pushed to any number of receivers (checkpoint fan-out)
    /// without cloning its contents.
    ///
    /// # Errors
    ///
    /// Propagates the delivery failure; the handler only ran on `Ok`.
    pub fn send_oneway_payload(
        &self,
        from: NodeId,
        to: NodeId,
        payload: &Bytes,
        handler: impl FnOnce(&Bytes),
    ) -> Result<(), NetError> {
        self.deliver(from, to, payload.wire_size())?;
        handler(payload);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use std::cell::Cell;
    use std::rc::Rc;

    fn sim() -> Sim {
        Sim::new(SimConfig::new(3).with_nodes(3))
    }

    #[test]
    fn successful_rpc_returns_handler_value() {
        let s = sim();
        let got = s.rpc(NodeId::new(0), NodeId::new(1), 10, 10, || 41 + 1);
        assert_eq!(got, Ok(42));
        assert_eq!(s.counters().delivered, 2, "request and reply");
    }

    #[test]
    fn same_node_rpc_skips_the_network() {
        let s = sim();
        let got = s.rpc(NodeId::new(0), NodeId::new(0), 10, 10, || 7);
        assert_eq!(got, Ok(7));
        assert_eq!(s.counters().delivered, 0);
    }

    #[test]
    fn rpc_to_down_server_times_out_without_executing() {
        let s = sim();
        s.crash(NodeId::new(1));
        let ran = Rc::new(Cell::new(false));
        let ran2 = ran.clone();
        let got = s.rpc(NodeId::new(0), NodeId::new(1), 1, 1, move || ran2.set(true));
        assert_eq!(got, Err(NetError::Timeout));
        assert!(!ran.get(), "handler must not run when request is lost");
        assert_eq!(s.counters().timeouts, 1);
    }

    #[test]
    fn server_crash_during_call_executes_but_times_out() {
        // The Figure-1-style asymmetry: effects stand, caller sees timeout.
        let s = sim();
        let server = NodeId::new(1);
        let effect = Rc::new(Cell::new(0));
        let effect2 = effect.clone();
        let s2 = s.clone();
        let got = s.rpc(NodeId::new(0), server, 1, 1, move || {
            effect2.set(7);
            s2.crash(server);
        });
        assert_eq!(got, Err(NetError::Timeout));
        assert_eq!(effect.get(), 7, "server-side effect must stand");
    }

    #[test]
    fn reply_loss_executes_but_times_out() {
        let s = sim();
        let server = NodeId::new(1);
        // The server's reply is its next send: crash it after 0 more sends
        // is immediate, so instead partition after request by crashing the
        // *caller*-side path: use crash_after_sends(server, 1) and have the
        // handler be a no-op; the only send from server is the reply.
        s.crash_after_sends(server, 1);
        let effect = Rc::new(Cell::new(false));
        let effect2 = effect.clone();
        let got = s.rpc(NodeId::new(0), server, 1, 1, move || effect2.set(true));
        // The reply *was* sent (crash fires after completing it), so this
        // particular script yields a successful call; crash with k=1 before
        // the request instead models losing the reply:
        assert!(got.is_ok());
        assert!(effect.get());
        assert!(!s.is_up(server), "server crashed right after replying");
    }

    #[test]
    fn caller_down_is_reported_as_caller_bug() {
        let s = sim();
        s.crash(NodeId::new(0));
        let got = s.rpc(NodeId::new(0), NodeId::new(1), 1, 1, || ());
        assert_eq!(got, Err(NetError::NodeDown(NodeId::new(0))));
    }

    #[test]
    fn rpc_flat_flattens_errors() {
        #[derive(Debug, PartialEq)]
        enum AppError {
            Net(NetError),
            Logic,
        }
        impl From<NetError> for AppError {
            fn from(e: NetError) -> Self {
                AppError::Net(e)
            }
        }
        let s = sim();
        let ok: Result<u32, AppError> = s.rpc_flat(NodeId::new(0), NodeId::new(1), 1, 1, || Ok(5));
        assert_eq!(ok, Ok(5));
        let logic: Result<u32, AppError> = s.rpc_flat(NodeId::new(0), NodeId::new(1), 1, 1, || {
            Err(AppError::Logic)
        });
        assert_eq!(logic, Err(AppError::Logic));
        s.crash(NodeId::new(1));
        let net: Result<u32, AppError> = s.rpc_flat(NodeId::new(0), NodeId::new(1), 1, 1, || Ok(5));
        assert_eq!(net, Err(AppError::Net(NetError::Timeout)));
    }

    #[test]
    fn rpc_payload_hands_the_buffer_to_the_handler_without_copying() {
        let s = sim();
        let req = Bytes::from_static(b"op-frame");
        let req_ptr = req.as_slice().as_ptr();
        let before = crate::wire::stats();
        let got = s.rpc_payload(NodeId::new(0), NodeId::new(1), &req, 8, |payload| {
            assert_eq!(payload.as_slice().as_ptr(), req_ptr, "same buffer");
            payload.len()
        });
        assert_eq!(got, Ok(8));
        assert_eq!(crate::wire::stats(), before, "no wire allocation");
        assert_eq!(
            s.counters().bytes_delivered,
            (req.wire_size() + 8) as u64,
            "request charged at wire size"
        );
    }

    #[test]
    fn oneway_payload_runs_handler_only_on_delivery() {
        let s = sim();
        let hit = Rc::new(Cell::new(0u8));
        let payload = Bytes::from_static(b"checkpoint");
        let h1 = hit.clone();
        assert!(s
            .send_oneway_payload(NodeId::new(0), NodeId::new(2), &payload, |p| {
                h1.set(p.len() as u8)
            })
            .is_ok());
        assert_eq!(hit.get(), 10);
        s.crash(NodeId::new(2));
        let h2 = hit.clone();
        assert!(s
            .send_oneway_payload(NodeId::new(0), NodeId::new(2), &payload, |_| h2.set(99))
            .is_err());
        assert_eq!(hit.get(), 10, "handler must not run on failed delivery");
    }

    #[test]
    fn oneway_send_runs_handler_only_on_delivery() {
        let s = sim();
        let hit = Rc::new(Cell::new(0));
        let h1 = hit.clone();
        assert!(s
            .send_oneway(NodeId::new(0), NodeId::new(2), 4, move || h1.set(1))
            .is_ok());
        assert_eq!(hit.get(), 1);
        s.crash(NodeId::new(2));
        let h2 = hit.clone();
        assert!(s
            .send_oneway(NodeId::new(0), NodeId::new(2), 4, move || h2.set(2))
            .is_err());
        assert_eq!(hit.get(), 1, "handler must not run on failed delivery");
    }
}
