//! Network-level failures observable by protocol code.

use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Why a message or RPC failed.
///
/// Protocol code built on the simulator should treat every variant as "the
/// remote operation may or may not have happened" — exactly the uncertainty a
/// real distributed system faces. The variants exist so that *tests* and
/// *metrics* can distinguish causes; correct protocols must not branch on
/// information a real node could not observe (e.g. `Dropped` vs a crash of
/// the peer after processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetError {
    /// The destination (or source) node is crashed.
    NodeDown(NodeId),
    /// The message was lost by the network.
    Dropped,
    /// Source and destination are in different partitions.
    Partitioned { from: NodeId, to: NodeId },
    /// An RPC did not receive a reply within the configured timeout.
    ///
    /// This is the only failure a real client can observe for a remote call;
    /// the other variants are exposed for instrumentation.
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Dropped => write!(f, "message dropped by the network"),
            NetError::Partitioned { from, to } => {
                write!(f, "network partition between {from} and {to}")
            }
            NetError::Timeout => write!(f, "rpc timed out"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            NetError::NodeDown(NodeId::new(2)).to_string(),
            "node n2 is down"
        );
        assert_eq!(NetError::Timeout.to_string(), "rpc timed out");
        assert!(NetError::Partitioned {
            from: NodeId::new(0),
            to: NodeId::new(1)
        }
        .to_string()
        .contains("partition"));
        assert!(NetError::Dropped.to_string().contains("dropped"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetError>();
    }
}
