//! Optional event tracing for debugging protocol runs.

use crate::ids::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single traced simulation event.
///
/// Traces are only recorded when [`crate::SimConfig::trace`] is set; they are
/// invaluable when a seeded failure test misbehaves, and power the
/// `examples/failover` walk-through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Delivery completion time.
        at: SimTime,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
        /// Raw id of the atomic action whose protocol step sent this
        /// message (see [`crate::Sim::set_active_action`]), if one was
        /// active.
        action: Option<u64>,
    },
    /// A message was lost (drop, partition, or dead destination).
    Lost {
        /// Time of the attempt.
        at: SimTime,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Human-readable cause.
        cause: &'static str,
        /// Raw id of the atomic action whose message was lost — the action
        /// a crash or drop aborted, if one was active at send time.
        action: Option<u64>,
    },
    /// A node crashed.
    Crash {
        /// Crash time.
        at: SimTime,
        /// The node that failed.
        node: NodeId,
    },
    /// A node recovered.
    Recover {
        /// Recovery time.
        at: SimTime,
        /// The node that came back.
        node: NodeId,
    },
    /// A link was partitioned (one event per newly blocked pair, with the
    /// smaller id first). Subsequent sends on the pair fail with
    /// [`crate::NetError::Partitioned`] until a matching [`TraceEvent::Heal`].
    Partition {
        /// Time the link was blocked.
        at: SimTime,
        /// One endpoint (the smaller id).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A previously partitioned link was healed.
    Heal {
        /// Time the link was restored.
        at: SimTime,
        /// One endpoint (the smaller id).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Free-form annotation emitted by protocol layers.
    Note {
        /// Annotation time.
        at: SimTime,
        /// The annotation text.
        text: String,
    },
}

impl TraceEvent {
    /// The raw id of the atomic action that caused this event, when known.
    /// Only message events ([`TraceEvent::Deliver`]/[`TraceEvent::Lost`])
    /// carry causal attribution.
    pub fn action(&self) -> Option<u64> {
        match self {
            TraceEvent::Deliver { action, .. } | TraceEvent::Lost { action, .. } => *action,
            _ => None,
        }
    }

    /// The virtual time at which this event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Deliver { at, .. }
            | TraceEvent::Lost { at, .. }
            | TraceEvent::Crash { at, .. }
            | TraceEvent::Recover { at, .. }
            | TraceEvent::Partition { at, .. }
            | TraceEvent::Heal { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Deliver {
                at,
                from,
                to,
                bytes,
                action,
            } => {
                write!(f, "[{at}] {from} -> {to} ({bytes}B)")?;
                if let Some(a) = action {
                    write!(f, " action={a}")?;
                }
                Ok(())
            }
            TraceEvent::Lost {
                at,
                from,
                to,
                cause,
                action,
            } => {
                write!(f, "[{at}] {from} -x-> {to} ({cause})")?;
                if let Some(a) = action {
                    write!(f, " action={a}")?;
                }
                Ok(())
            }
            TraceEvent::Crash { at, node } => write!(f, "[{at}] CRASH {node}"),
            TraceEvent::Recover { at, node } => write!(f, "[{at}] RECOVER {node}"),
            TraceEvent::Partition { at, a, b } => write!(f, "[{at}] PARTITION {a} -/- {b}"),
            TraceEvent::Heal { at, a, b } => write!(f, "[{at}] HEAL {a} --- {b}"),
            TraceEvent::Note { at, text } => write!(f, "[{at}] note: {text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_time_for_all_variants() {
        let t = SimTime::from_micros(5);
        let events = [
            TraceEvent::Deliver {
                at: t,
                from: NodeId::new(0),
                to: NodeId::new(1),
                bytes: 8,
                action: Some(3),
            },
            TraceEvent::Lost {
                at: t,
                from: NodeId::new(0),
                to: NodeId::new(1),
                cause: "drop",
                action: None,
            },
            TraceEvent::Crash {
                at: t,
                node: NodeId::new(2),
            },
            TraceEvent::Recover {
                at: t,
                node: NodeId::new(2),
            },
            TraceEvent::Partition {
                at: t,
                a: NodeId::new(0),
                b: NodeId::new(1),
            },
            TraceEvent::Heal {
                at: t,
                a: NodeId::new(0),
                b: NodeId::new(1),
            },
            TraceEvent::Note {
                at: t,
                text: "hello".into(),
            },
        ];
        for e in &events {
            assert_eq!(e.at(), t);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn action_attribution_only_on_message_events() {
        let t = SimTime::from_micros(1);
        let deliver = TraceEvent::Deliver {
            at: t,
            from: NodeId::new(0),
            to: NodeId::new(1),
            bytes: 4,
            action: Some(9),
        };
        assert_eq!(deliver.action(), Some(9));
        assert!(deliver.to_string().contains("action=9"));
        let crash = TraceEvent::Crash {
            at: t,
            node: NodeId::new(0),
        };
        assert_eq!(crash.action(), None);
    }
}
