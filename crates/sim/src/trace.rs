//! Optional event tracing for debugging protocol runs.

use crate::ids::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single traced simulation event.
///
/// Traces are only recorded when [`crate::SimConfig::trace`] is set; they are
/// invaluable when a seeded failure test misbehaves, and power the
/// `examples/failover` walk-through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Delivery completion time.
        at: SimTime,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message was lost (drop, partition, or dead destination).
    Lost {
        /// Time of the attempt.
        at: SimTime,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Human-readable cause.
        cause: &'static str,
    },
    /// A node crashed.
    Crash {
        /// Crash time.
        at: SimTime,
        /// The node that failed.
        node: NodeId,
    },
    /// A node recovered.
    Recover {
        /// Recovery time.
        at: SimTime,
        /// The node that came back.
        node: NodeId,
    },
    /// A link was partitioned (one event per newly blocked pair, with the
    /// smaller id first). Subsequent sends on the pair fail with
    /// [`crate::NetError::Partitioned`] until a matching [`TraceEvent::Heal`].
    Partition {
        /// Time the link was blocked.
        at: SimTime,
        /// One endpoint (the smaller id).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A previously partitioned link was healed.
    Heal {
        /// Time the link was restored.
        at: SimTime,
        /// One endpoint (the smaller id).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Free-form annotation emitted by protocol layers.
    Note {
        /// Annotation time.
        at: SimTime,
        /// The annotation text.
        text: String,
    },
}

impl TraceEvent {
    /// The virtual time at which this event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Deliver { at, .. }
            | TraceEvent::Lost { at, .. }
            | TraceEvent::Crash { at, .. }
            | TraceEvent::Recover { at, .. }
            | TraceEvent::Partition { at, .. }
            | TraceEvent::Heal { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Deliver {
                at,
                from,
                to,
                bytes,
            } => {
                write!(f, "[{at}] {from} -> {to} ({bytes}B)")
            }
            TraceEvent::Lost {
                at,
                from,
                to,
                cause,
            } => {
                write!(f, "[{at}] {from} -x-> {to} ({cause})")
            }
            TraceEvent::Crash { at, node } => write!(f, "[{at}] CRASH {node}"),
            TraceEvent::Recover { at, node } => write!(f, "[{at}] RECOVER {node}"),
            TraceEvent::Partition { at, a, b } => write!(f, "[{at}] PARTITION {a} -/- {b}"),
            TraceEvent::Heal { at, a, b } => write!(f, "[{at}] HEAL {a} --- {b}"),
            TraceEvent::Note { at, text } => write!(f, "[{at}] note: {text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_extracts_time_for_all_variants() {
        let t = SimTime::from_micros(5);
        let events = [
            TraceEvent::Deliver {
                at: t,
                from: NodeId::new(0),
                to: NodeId::new(1),
                bytes: 8,
            },
            TraceEvent::Lost {
                at: t,
                from: NodeId::new(0),
                to: NodeId::new(1),
                cause: "drop",
            },
            TraceEvent::Crash {
                at: t,
                node: NodeId::new(2),
            },
            TraceEvent::Recover {
                at: t,
                node: NodeId::new(2),
            },
            TraceEvent::Partition {
                at: t,
                a: NodeId::new(0),
                b: NodeId::new(1),
            },
            TraceEvent::Heal {
                at: t,
                a: NodeId::new(0),
                b: NodeId::new(1),
            },
            TraceEvent::Note {
                at: t,
                text: "hello".into(),
            },
        ];
        for e in &events {
            assert_eq!(e.at(), t);
            assert!(!e.to_string().is_empty());
        }
    }
}
