//! The workload driver: interleaved client state machines.

use crate::metrics::Histogram;
use crate::spec::{FaultAction, FaultScript, WorkloadSpec};
use groupview_actions::{ActionId, TxStats};
use groupview_replication::{Client, CounterOp, ObjectGroup, System};
use groupview_sim::{ClientId, NetCounters, ScheduledEvent, SimDuration};
use std::collections::HashSet;
use std::fmt;

/// Everything a workload run measured.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Actions started (including ones that later aborted).
    pub attempts: u64,
    /// Actions that committed.
    pub commits: u64,
    /// Actions that aborted (any phase).
    pub aborts: u64,
    /// Aborts during binding/activation.
    pub abort_bind: u64,
    /// Bind aborts caused by ordinary lock contention (see
    /// [`groupview_replication::ActivateError::is_failure_caused`]).
    pub abort_bind_contention: u64,
    /// Bind aborts caused by node/network failures (no live servers,
    /// unreachable databases, lost state).
    pub abort_bind_failure: u64,
    /// Aborts during operation invocation.
    pub abort_invoke: u64,
    /// Invocation aborts caused by ordinary lock contention between live
    /// clients ([`groupview_replication::InvokeError::Tx`] with a refused
    /// lock). Always possible under refusal-based locking; says nothing
    /// about crashes.
    pub abort_contention: u64,
    /// Invocation aborts caused by node/replica failures (multicast
    /// failures via `InvokeError::Group`, exhausted replicas, lost state).
    /// Zero means every crash in the run was masked by replication.
    pub abort_failure: u64,
    /// Aborts during commit (write-back, exclude, or two-phase commit).
    pub abort_commit: u64,
    /// Commit aborts caused by ordinary lock contention (a refused exclude
    /// or database lock; see
    /// [`groupview_replication::CommitError::is_failure_caused`]).
    pub abort_commit_contention: u64,
    /// Commit aborts caused by node/store failures (all stores unreachable,
    /// lost final state, failed two-phase commit). Zero means every crash
    /// in the run was masked at commit time.
    pub abort_commit_failure: u64,
    /// Dead servers discovered "the hard way" at bind time.
    pub probe_failures: u64,
    /// Binding attempts retried due to lock contention.
    pub bind_retries: u64,
    /// Failed servers pruned from `Sv` by the updating schemes.
    pub servers_removed: u64,
    /// Registered bindings abandoned by crashed clients.
    pub leaked_bindings: u64,
    /// Use-list entries reclaimed by cleanup sweeps.
    pub cleanup_reclaimed: u64,
    /// Per-action virtual latency (µs), successful and failed alike.
    pub action_latency_us: Histogram,
    /// Per-action message counts.
    pub action_messages: Histogram,
    /// Driver steps executed.
    pub steps: u64,
    /// Final transaction-layer statistics.
    pub tx: TxStats,
    /// Final network counters.
    pub net: NetCounters,
}

impl RunMetrics {
    /// Fraction of attempted actions that committed.
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.commits as f64 / self.attempts as f64
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempts={} commits={} aborts={} (bind={} [contention={} failure={}] \
             invoke={} [contention={} failure={}] \
             commit={} [contention={} failure={}]) availability={:.1}%",
            self.attempts,
            self.commits,
            self.aborts,
            self.abort_bind,
            self.abort_bind_contention,
            self.abort_bind_failure,
            self.abort_invoke,
            self.abort_contention,
            self.abort_failure,
            self.abort_commit,
            self.abort_commit_contention,
            self.abort_commit_failure,
            self.availability() * 100.0
        )
    }
}

enum Phase {
    Idle,
    Running {
        action: ActionId,
        // Boxed: ObjectGroup is ~200 bytes and Idle carries nothing.
        group: Box<ObjectGroup>,
        ops_left: usize,
        read_only: bool,
    },
}

struct Machine {
    idx: usize,
    client: Client,
    actions_left: usize,
    phase: Phase,
    dead: bool,
}

impl Machine {
    fn is_finished(&self) -> bool {
        self.dead || (self.actions_left == 0 && matches!(self.phase, Phase::Idle))
    }
}

/// Runs a [`WorkloadSpec`] against a [`System`], one client step at a time.
///
/// Clients are interleaved in a seeded-random order every step, so lock
/// contention, use-list overlap, and crash windows between steps are all
/// exercised deterministically. The driver drives **counter objects**
/// ([`groupview_replication::Counter`]): write actions invoke `Add(1)`,
/// read-only actions invoke `Get`.
pub struct Driver {
    sys: System,
    spec: WorkloadSpec,
    script: FaultScript,
}

impl fmt::Debug for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Driver")
            .field("clients", &self.spec.clients)
            .field("faults", &self.script.len())
            .finish()
    }
}

impl Driver {
    /// Creates a driver for the given system and workload.
    pub fn new(sys: &System, spec: WorkloadSpec) -> Self {
        Driver {
            sys: sys.clone(),
            spec,
            script: FaultScript::new(),
        }
    }

    /// Attaches a deterministic fault script.
    pub fn with_faults(mut self, script: FaultScript) -> Self {
        self.script = script;
        self
    }

    /// Runs the workload to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no objects or no client nodes.
    pub fn run(&self) -> RunMetrics {
        assert!(!self.spec.objects.is_empty(), "workload needs objects");
        assert!(
            !self.spec.client_nodes.is_empty(),
            "workload needs client nodes"
        );
        let sys = &self.sys;
        let mut metrics = RunMetrics::default();
        let mut machines: Vec<Machine> = (0..self.spec.clients)
            .map(|i| {
                let node = self.spec.client_nodes[i % self.spec.client_nodes.len()];
                Machine {
                    idx: i,
                    client: sys.client_with_id(ClientId::new(i as u32), node),
                    actions_left: self.spec.actions_per_client,
                    phase: Phase::Idle,
                    dead: false,
                }
            })
            .collect();

        // Generous upper bound: every action takes ops+2 steps plus retries.
        let max_steps =
            (self.spec.total_actions() as u64) * (self.spec.ops_per_action as u64 + 3) * 4 + 1000;

        // Nodes whose recovery protocol still has deferred work (`Insert`
        // refused while non-quiescent, `Include` refused by reader locks):
        // the paper's recovering node keeps retrying, so does the driver.
        let mut recovering: Vec<groupview_sim::NodeId> = Vec::new();

        let mut step = 0u64;
        while step < max_steps {
            step += 1;
            // Scripted faults.
            for fault in self.script.due(step) {
                if let FaultAction::RecoverNode(node) = fault {
                    recovering.push(node);
                }
                self.apply_fault(fault, &mut machines, &mut metrics);
            }
            // Simulator-scheduled events (crash/recover at virtual times).
            for ev in sys.sim().run_due_events() {
                if let ScheduledEvent::Recover(node) = ev {
                    recovering.push(node);
                    sys.recovery().recover_node(node);
                }
            }
            // Retry deferred recovery work.
            recovering.retain(|&node| {
                if !sys.sim().is_up(node) {
                    return false; // crashed again; a future recover re-adds it
                }
                let mut report = sys.recovery().recover_store(node);
                report.merge(sys.recovery().recover_server(node));
                !report.fully_recovered()
            });
            sys.sim().advance(SimDuration::from_micros(50));

            let mut order: Vec<usize> = machines
                .iter()
                .filter(|m| !m.is_finished())
                .map(|m| m.idx)
                .collect();
            if order.is_empty() && recovering.is_empty() {
                break;
            }
            sys.sim().shuffle(&mut order);
            for idx in order {
                self.step_machine(&mut machines[idx], &mut metrics);
            }
        }
        metrics.steps = step;
        metrics.tx = sys.tx().stats();
        metrics.net = sys.sim().counters();
        sys.sim().set_active_account(None);
        metrics
    }

    fn apply_fault(&self, fault: FaultAction, machines: &mut [Machine], metrics: &mut RunMetrics) {
        match fault {
            FaultAction::CrashNode(node) => self.sys.sim().crash(node),
            FaultAction::RecoverNode(node) => {
                self.sys.recovery().recover_node(node);
            }
            FaultAction::CrashClient(i) => {
                if let Some(m) = machines.get_mut(i) {
                    if !m.dead {
                        m.dead = true;
                        if let Phase::Running { action, .. } =
                            std::mem::replace(&mut m.phase, Phase::Idle)
                        {
                            metrics.leaked_bindings +=
                                m.client.crash_without_cleanup(action) as u64;
                            metrics.aborts += 1;
                        }
                    }
                }
            }
            FaultAction::CleanupSweep => {
                let dead: HashSet<ClientId> = machines
                    .iter()
                    .filter(|m| m.dead)
                    .map(|m| m.client.id())
                    .collect();
                let report = self.sys.cleanup().sweep(|c| !dead.contains(&c));
                metrics.cleanup_reclaimed += report.reclaimed() as u64;
            }
        }
    }

    fn step_machine(&self, m: &mut Machine, metrics: &mut RunMetrics) {
        if m.dead {
            return;
        }
        let sim = self.sys.sim();
        let account = m.idx as u64;
        sim.set_active_account(Some(account));

        match std::mem::replace(&mut m.phase, Phase::Idle) {
            Phase::Idle => {
                if m.actions_left == 0 {
                    return;
                }
                m.actions_left -= 1;
                metrics.attempts += 1;
                sim.account_reset(account);
                let read_only = sim.chance(self.spec.read_fraction);
                let uid =
                    self.spec.objects[sim.random_below(self.spec.objects.len() as u64) as usize];
                let action = m.client.begin();
                let outcome = if read_only {
                    m.client.activate_read_only(action, uid, self.spec.replicas)
                } else {
                    m.client.activate(action, uid, self.spec.replicas)
                };
                match outcome {
                    Ok(group) => {
                        let b = group.binding();
                        metrics.probe_failures += u64::from(b.probe_failures);
                        metrics.bind_retries += u64::from(b.retries);
                        metrics.servers_removed += b.removed.len() as u64;
                        m.phase = Phase::Running {
                            action,
                            group: Box::new(group),
                            ops_left: self.spec.ops_per_action,
                            read_only,
                        };
                    }
                    Err(e) => {
                        m.client.abort(action);
                        metrics.abort_bind += 1;
                        if e.is_failure_caused() {
                            metrics.abort_bind_failure += 1;
                        } else {
                            metrics.abort_bind_contention += 1;
                        }
                        self.finish_action(m, metrics, false);
                    }
                }
            }
            Phase::Running {
                action,
                group,
                ops_left,
                read_only,
            } => {
                if ops_left > 0 {
                    let result = if read_only {
                        m.client
                            .invoke_read(action, &group, &CounterOp::Get.encode())
                    } else {
                        m.client.invoke(action, &group, &CounterOp::Add(1).encode())
                    };
                    match result {
                        Ok(_) => {
                            m.phase = Phase::Running {
                                action,
                                group,
                                ops_left: ops_left - 1,
                                read_only,
                            };
                        }
                        Err(e) => {
                            m.client.abort(action);
                            metrics.abort_invoke += 1;
                            if e.is_failure_caused() {
                                metrics.abort_failure += 1;
                            } else {
                                metrics.abort_contention += 1;
                            }
                            self.finish_action(m, metrics, false);
                        }
                    }
                } else {
                    let uid = group.uid;
                    match m.client.commit(action) {
                        Ok(()) => self.finish_action(m, metrics, true),
                        Err(e) => {
                            metrics.abort_commit += 1;
                            if e.is_failure_caused() {
                                metrics.abort_commit_failure += 1;
                            } else {
                                metrics.abort_commit_contention += 1;
                            }
                            self.finish_action(m, metrics, false);
                        }
                    }
                    if self.spec.passivate_between_actions {
                        let _ = self.sys.try_passivate(uid);
                    }
                }
            }
        }
    }

    fn finish_action(&self, m: &Machine, metrics: &mut RunMetrics, committed: bool) {
        if committed {
            metrics.commits += 1;
        } else {
            metrics.aborts += 1;
        }
        let cost = self.sys.sim().account_cost(m.idx as u64);
        metrics.action_latency_us.add(cost.latency.as_micros());
        metrics.action_messages.add(cost.messages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_core::BindingScheme;
    use groupview_replication::{Counter, ReplicationPolicy};
    use groupview_sim::NodeId;
    use groupview_store::Uid;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn world(policy: ReplicationPolicy, scheme: BindingScheme, seed: u64) -> (System, Vec<Uid>) {
        let sys = System::builder(seed)
            .nodes(7)
            .policy(policy)
            .scheme(scheme)
            .build();
        let uids = (0..3)
            .map(|i| {
                sys.create_object(
                    Box::new(Counter::new(i)),
                    &[n(1), n(2), n(3)],
                    &[n(1), n(2), n(3)],
                )
                .expect("create")
            })
            .collect();
        (sys, uids)
    }

    fn spec(objects: Vec<Uid>) -> WorkloadSpec {
        WorkloadSpec::new(objects, vec![n(4), n(5), n(6)])
            .clients(3)
            .actions_per_client(4)
            .ops_per_action(2)
    }

    #[test]
    fn fault_free_run_accounts_for_every_action() {
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 9);
        let metrics = Driver::new(&sys, spec(uids)).run();
        assert_eq!(metrics.attempts, 12);
        assert_eq!(metrics.commits + metrics.aborts, 12);
        // No faults: the only possible aborts are object-lock contention
        // between interleaved writers (refusal-based locking). Causal
        // assertions only — no seed-dependent availability floor.
        assert_eq!(metrics.aborts, metrics.abort_invoke);
        assert_eq!(metrics.abort_failure, 0, "no crashes, no failure aborts");
        assert_eq!(metrics.abort_contention, metrics.abort_invoke);
        assert_eq!(
            metrics.abort_commit_failure, 0,
            "no crashes, no failure-caused commit aborts"
        );
        assert_eq!(metrics.action_latency_us.count(), 12);
        assert!(sys.tx().locks_empty(), "quiescent at end");
    }

    #[test]
    fn single_client_run_commits_everything() {
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 9);
        let spec = WorkloadSpec::new(uids, vec![n(4)])
            .clients(1)
            .actions_per_client(6)
            .ops_per_action(2);
        let metrics = Driver::new(&sys, spec).run();
        assert_eq!(metrics.commits, 6);
        assert_eq!(metrics.aborts, 0);
        assert_eq!(metrics.availability(), 1.0);
        assert!(metrics.to_string().contains("availability=100.0%"));
    }

    #[test]
    fn active_policy_survives_server_crash() {
        // Asserts crash masking *directly* via the abort-cause breakdown,
        // so the test is robust to RNG-seed interleaving changes: whatever
        // contention the schedule produces, a masked crash must cause no
        // failure-attributed abort anywhere.
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 13);
        let script = FaultScript::new().at(5, FaultAction::CrashNode(n(2)));
        let metrics = Driver::new(&sys, spec(uids)).with_faults(script).run();
        assert_eq!(metrics.attempts, 12);
        assert!(metrics.commits > 0, "{metrics}");
        assert_eq!(
            metrics.abort_failure, 0,
            "the crash must be masked — every invoke abort must be \
             ordinary lock contention: {metrics}"
        );
        assert_eq!(
            metrics.abort_commit_failure, 0,
            "write-back must survive every masked crash: {metrics}"
        );
    }

    #[test]
    fn single_copy_crash_causes_aborts() {
        let (sys, uids) = world(
            ReplicationPolicy::SingleCopyPassive,
            BindingScheme::Standard,
            11,
        );
        let script = FaultScript::new().at(3, FaultAction::CrashNode(n(1)));
        let metrics = Driver::new(&sys, spec(uids)).with_faults(script).run();
        assert!(metrics.aborts > 0, "in-flight singletons abort: {metrics}");
        assert!(
            metrics.abort_failure > 0,
            "unreplicated crashes must show up as failure-caused: {metrics}"
        );
        // New activations fail over to other Sv members, so later actions
        // commit again.
        assert!(metrics.commits > 0);
    }

    #[test]
    fn client_crash_leaks_then_sweep_reclaims() {
        let (sys, uids) = world(
            ReplicationPolicy::Active,
            BindingScheme::IndependentTopLevel,
            12,
        );
        let script = FaultScript::new()
            .at(2, FaultAction::CrashClient(0))
            .at(8, FaultAction::CleanupSweep);
        let metrics = Driver::new(&sys, spec(uids)).with_faults(script).run();
        assert!(metrics.leaked_bindings >= 1, "{metrics:?}");
        assert!(metrics.cleanup_reclaimed >= 1);
        for uid in sys.naming().server_db.uids() {
            assert!(
                sys.naming().server_db.entry(uid).unwrap().is_quiescent(),
                "all use lists reclaimed"
            );
        }
    }

    #[test]
    fn recovery_action_restores_full_strength() {
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 13);
        let script = FaultScript::new()
            .at(2, FaultAction::CrashNode(n(3)))
            .at(10, FaultAction::RecoverNode(n(3)));
        let metrics = Driver::new(&sys, spec(uids)).with_faults(script).run();
        assert!(metrics.commits > 0);
        // After recovery every object's St is back to full strength.
        for &uid in &sys.naming().state_db.uids() {
            assert_eq!(
                sys.naming().state_db.entry(uid).unwrap().len(),
                3,
                "St restored after recovery"
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, seed);
            let script = FaultScript::new().at(4, FaultAction::CrashNode(n(1)));
            let m = Driver::new(&sys, spec(uids)).with_faults(script).run();
            (m.commits, m.aborts, m.net.delivered, m.steps)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn read_only_workload_uses_read_path() {
        let (sys, uids) = world(ReplicationPolicy::Active, BindingScheme::Standard, 14);
        let spec = spec(uids).read_fraction(1.0);
        let metrics = Driver::new(&sys, spec).run();
        assert_eq!(metrics.commits, 12);
        // Read-only actions never copy state: every store still holds v0.
        for uid in sys.naming().state_db.uids() {
            let st = sys.stores().read_local(n(1), uid).unwrap();
            assert_eq!(st.version, groupview_store::Version::INITIAL);
        }
    }
}
