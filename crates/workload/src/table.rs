//! Aligned text tables for experiment output.

use std::fmt;

/// A simple column-aligned table, rendered in the style the experiment
/// harness prints (and `EXPERIMENTS.md` records).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < w.len() {
                    w[i] = w[i].max(cell.len());
                } else {
                    w.push(cell.len());
                }
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(
                    f,
                    " {:<width$} |",
                    cell,
                    width = w.get(i).copied().unwrap_or(0)
                )?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{:-<width$}|", "", width = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float cell compactly.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage cell.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new("Demo", &["name", "count"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into()]); // padded
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.starts_with("## Demo"));
        assert!(s.contains("| name  | count |"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     |       |"));
        assert!(s.contains("|-------|-------|"));
    }

    #[test]
    fn cell_formatters() {
        assert_eq!(fmt_f64(1.234), "1.23");
        assert_eq!(fmt_pct(0.5), "50.0%");
    }
}
