//! Workload descriptions and deterministic fault scripts.

use groupview_sim::NodeId;
use groupview_store::Uid;

/// Describes a population of client applications for the scenario
/// runner (`groupview-scenario`'s `run_plan`, the workspace's single
/// workload execution engine).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of logical clients.
    pub clients: usize,
    /// Nodes clients run on, assigned round-robin.
    pub client_nodes: Vec<NodeId>,
    /// Objects the workload touches; each action picks one (seeded) at
    /// random.
    pub objects: Vec<Uid>,
    /// Actions each client runs before stopping.
    pub actions_per_client: usize,
    /// Operations invoked inside each action.
    pub ops_per_action: usize,
    /// Operations grouped into one batched invocation (`invoke_batch`).
    /// `1` (the default) uses the plain per-op invoke path; larger values
    /// send up to this many ops per wire frame. The last batch of an
    /// action may be short when `ops_per_action` is not a multiple.
    pub ops_per_batch: usize,
    /// Fraction of actions that are read-only (uses the read-optimised
    /// binding and skips commit-time state copies).
    pub read_fraction: f64,
    /// Desired server replicas per binding (`|Sv'|`).
    pub replicas: usize,
    /// Whether to passivate each object after an action on it finishes (the
    /// paper's normal mode: "objects not in use normally remain in a
    /// passive state"). Off by default so replicas stay warm.
    pub passivate_between_actions: bool,
    /// Transfer mode: every mutating action is a two-object balanced
    /// transfer (withdraw from one account, deposit the same amount into
    /// another) driven through the typed `Tx` surface. Requires at least
    /// two (account) objects; read-only actions stay single-object balance
    /// reads. The account total is conserved at every commit, which the
    /// oracle's conservation check exploits.
    pub transfers: bool,
}

impl WorkloadSpec {
    /// A small default workload over the given objects and client nodes.
    pub fn new(objects: Vec<Uid>, client_nodes: Vec<NodeId>) -> Self {
        WorkloadSpec {
            clients: 4,
            client_nodes,
            objects,
            actions_per_client: 10,
            ops_per_action: 3,
            ops_per_batch: 1,
            read_fraction: 0.0,
            replicas: 2,
            passivate_between_actions: false,
            transfers: false,
        }
    }

    /// Sets the client count.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Sets actions per client.
    pub fn actions_per_client(mut self, n: usize) -> Self {
        self.actions_per_client = n;
        self
    }

    /// Sets operations per action.
    pub fn ops_per_action(mut self, n: usize) -> Self {
        self.ops_per_action = n;
        self
    }

    /// Sets operations per batched invocation (`1` disables batching).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ops_per_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "ops per batch must be at least 1");
        self.ops_per_batch = n;
        self
    }

    /// Sets the read-only action fraction.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]`.
    pub fn read_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "read fraction must be in [0,1]");
        self.read_fraction = f;
        self
    }

    /// Sets the desired replica count per binding.
    pub fn replicas(mut self, k: usize) -> Self {
        self.replicas = k;
        self
    }

    /// Passivates objects whenever an action on them finishes.
    pub fn passivate_between_actions(mut self) -> Self {
        self.passivate_between_actions = true;
        self
    }

    /// Makes every mutating action a two-object balanced transfer (see
    /// [`WorkloadSpec::transfers`]).
    pub fn transfers(mut self) -> Self {
        self.transfers = true;
        self
    }

    /// Total actions the workload will attempt.
    pub fn total_actions(&self) -> usize {
        self.clients * self.actions_per_client
    }
}

/// One scripted fault, applied when the driver reaches a given step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a node (fail-silent).
    CrashNode(NodeId),
    /// Recover a node and run the full §4 recovery protocol.
    RecoverNode(NodeId),
    /// Crash a client (by index): its in-flight action is abandoned and —
    /// under the updating schemes — its use-list entries leak until a
    /// cleanup sweep.
    CrashClient(usize),
    /// Run one cleanup-daemon sweep (crashed clients are considered dead).
    CleanupSweep,
}

/// A deterministic schedule of [`FaultAction`]s keyed by driver step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<(u64, FaultAction)>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Adds an action at the given step (steps start at 1).
    pub fn at(mut self, step: u64, action: FaultAction) -> Self {
        self.events.push((step, action));
        self
    }

    /// All scheduled `(step, action)` pairs, in insertion order. Used by the
    /// scenario engine's `FaultPlan` conversion shim.
    pub fn events(&self) -> &[(u64, FaultAction)] {
        &self.events
    }

    /// All actions scheduled for `step`, in insertion order.
    pub fn due(&self, step: u64) -> Vec<FaultAction> {
        self.events
            .iter()
            .filter(|(s, _)| *s == step)
            .map(|(_, a)| a.clone())
            .collect()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let spec = WorkloadSpec::new(vec![Uid::from_raw(1)], vec![NodeId::new(0)])
            .clients(8)
            .actions_per_client(5)
            .ops_per_action(2)
            .ops_per_batch(4)
            .read_fraction(0.5)
            .replicas(3);
        assert_eq!(spec.clients, 8);
        assert_eq!(spec.total_actions(), 40);
        assert_eq!(spec.replicas, 3);
        assert_eq!(spec.read_fraction, 0.5);
        assert_eq!(spec.ops_per_batch, 4);
    }

    #[test]
    #[should_panic(expected = "ops per batch")]
    fn ops_per_batch_validated() {
        let _ = WorkloadSpec::new(vec![], vec![]).ops_per_batch(0);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn read_fraction_validated() {
        let _ = WorkloadSpec::new(vec![], vec![]).read_fraction(2.0);
    }

    #[test]
    fn script_schedule() {
        let script = FaultScript::new()
            .at(3, FaultAction::CrashNode(NodeId::new(1)))
            .at(3, FaultAction::CrashClient(0))
            .at(5, FaultAction::CleanupSweep);
        assert_eq!(script.len(), 3);
        assert!(!script.is_empty());
        assert_eq!(
            script.due(3),
            vec![
                FaultAction::CrashNode(NodeId::new(1)),
                FaultAction::CrashClient(0)
            ]
        );
        assert!(script.due(4).is_empty());
        assert_eq!(script.due(5), vec![FaultAction::CleanupSweep]);
    }
}
