//! Simple sample-based histograms for latency and message counts.

use std::fmt;

/// A collection of `u64` samples with summary statistics.
///
/// Keeps all samples (experiment runs are small); percentiles are exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn add(&mut self, sample: u64) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Exact percentile by nearest-rank (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).floor() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.max()
        )
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Histogram {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_on_known_data() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.total(), 5050);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn merge_and_extend() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [3u64].into_iter().collect();
        a.merge(&b);
        a.extend([4u64]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.total(), 10);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_validates_range() {
        Histogram::new().percentile(150.0);
    }
}
