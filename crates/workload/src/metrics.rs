//! Run-level metrics: sample-based histograms and the [`RunMetrics`]
//! record every workload run produces (the scenario runner fills one in;
//! the legacy `Driver` used to).

use groupview_actions::TxStats;
use groupview_sim::NetCounters;
use std::cell::{Cell, RefCell};
use std::fmt;

/// Everything a workload run measured.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Actions started (including ones that later aborted).
    pub attempts: u64,
    /// Actions that committed.
    pub commits: u64,
    /// Actions that aborted (any phase).
    pub aborts: u64,
    /// Aborts during binding/activation.
    pub abort_bind: u64,
    /// Bind aborts caused by ordinary lock contention (see
    /// [`groupview_replication::ActivateError::is_failure_caused`]).
    pub abort_bind_contention: u64,
    /// Bind aborts caused by node/network failures (no live servers,
    /// unreachable databases, lost state).
    pub abort_bind_failure: u64,
    /// Aborts during operation invocation.
    pub abort_invoke: u64,
    /// Invocation aborts caused by ordinary lock contention between live
    /// clients ([`groupview_replication::InvokeError::Tx`] with a refused
    /// lock). Always possible under refusal-based locking; says nothing
    /// about crashes.
    pub abort_contention: u64,
    /// Invocation aborts caused by node/replica failures (multicast
    /// failures via `InvokeError::Group`, exhausted replicas, lost state).
    /// Zero means every crash in the run was masked by replication.
    pub abort_failure: u64,
    /// Aborts during commit (write-back, exclude, or two-phase commit).
    pub abort_commit: u64,
    /// Commit aborts caused by ordinary lock contention (a refused exclude
    /// or database lock; see
    /// [`groupview_replication::CommitError::is_failure_caused`]).
    pub abort_commit_contention: u64,
    /// Commit aborts caused by node/store failures (all stores unreachable,
    /// lost final state, failed two-phase commit). Zero means every crash
    /// in the run was masked at commit time.
    pub abort_commit_failure: u64,
    /// Dead servers discovered "the hard way" at bind time.
    pub probe_failures: u64,
    /// Binding attempts retried due to lock contention.
    pub bind_retries: u64,
    /// Failed servers pruned from `Sv` by the updating schemes.
    pub servers_removed: u64,
    /// Registered bindings abandoned by crashed clients.
    pub leaked_bindings: u64,
    /// Use-list entries reclaimed by cleanup sweeps.
    pub cleanup_reclaimed: u64,
    /// Replica migrations committed by elastic-membership plan actions
    /// (`AddNode` activation moves, `DrainNode` evacuations, `Rebalance`
    /// moves). Zero for every plan without membership actions.
    pub migrations: u64,
    /// Migration attempts deferred because the object was bound or locked
    /// at the time (the §4.1.2 quiescence check refused the repoint);
    /// retried by later drain rounds and rebalance sweeps.
    pub migrations_deferred: u64,
    /// Per-action virtual latency (µs), successful and failed alike.
    pub action_latency_us: Histogram,
    /// Per-action message counts.
    pub action_messages: Histogram,
    /// Driver steps executed.
    pub steps: u64,
    /// Final transaction-layer statistics.
    pub tx: TxStats,
    /// Final network counters.
    pub net: NetCounters,
}

impl RunMetrics {
    /// Fraction of attempted actions that committed.
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.commits as f64 / self.attempts as f64
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempts={} commits={} aborts={} (bind={} [contention={} failure={}] \
             invoke={} [contention={} failure={}] \
             commit={} [contention={} failure={}]) availability={:.1}%",
            self.attempts,
            self.commits,
            self.aborts,
            self.abort_bind,
            self.abort_bind_contention,
            self.abort_bind_failure,
            self.abort_invoke,
            self.abort_contention,
            self.abort_failure,
            self.abort_commit,
            self.abort_commit_contention,
            self.abort_commit_failure,
            self.availability() * 100.0
        )?;
        // Only elastic plans migrate; keep the classic line untouched for
        // everything else (recorded-output tests pin it).
        if self.migrations != 0 || self.migrations_deferred != 0 {
            write!(
                f,
                " migrations={} [deferred={}]",
                self.migrations, self.migrations_deferred
            )?;
        }
        Ok(())
    }
}

/// A collection of `u64` samples with summary statistics.
///
/// Keeps all samples (experiment runs are small); percentiles are exact
/// **nearest-rank** values. The sample vector is sorted lazily — the first
/// percentile query after a batch of [`Histogram::add`]s sorts once, and
/// every further query reuses the sorted order until new samples arrive
/// (no clone-and-sort per call).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: RefCell<Vec<u64>>,
    sorted: Cell<bool>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn add(&mut self, sample: u64) {
        self.samples.get_mut().push(sample);
        self.sorted.set(false);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let samples = self.samples.borrow();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    }

    /// Sorts the samples in place once; later queries reuse the order.
    fn ensure_sorted(&self) {
        if !self.sorted.get() {
            self.samples.borrow_mut().sort_unstable();
            self.sorted.set(true);
        }
    }

    /// Exact percentile by **nearest-rank** (0 when empty): the smallest
    /// sample such that at least `p`% of the samples are ≤ it — index
    /// `ceil(p/100 · n) - 1` of the sorted samples. `p = 0` returns the
    /// minimum, `p = 100` the maximum; p95 of 10 samples is the 10th.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        self.ensure_sorted();
        let samples = self.samples.borrow();
        if samples.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.borrow().iter().copied().max().unwrap_or(0)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.borrow().iter().copied().min().unwrap_or(0)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.samples.borrow().iter().sum()
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples
            .get_mut()
            .extend_from_slice(&other.samples.borrow());
        self.sorted.set(false);
    }
}

/// Multiset equality: two histograms are equal when they hold the same
/// samples, regardless of insertion order or lazy-sort state.
impl PartialEq for Histogram {
    fn eq(&self, other: &Histogram) -> bool {
        self.ensure_sorted();
        other.ensure_sorted();
        *self.samples.borrow() == *other.samples.borrow()
    }
}

impl Eq for Histogram {}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.max()
        )
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Histogram {
            samples: RefCell::new(iter.into_iter().collect()),
            sorted: Cell::new(false),
        }
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.get_mut().extend(iter);
        self.sorted.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_on_known_data() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.total(), 5050);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
    }

    /// The nearest-rank contract on a sample count that distinguishes it
    /// from floor-of-linear-index: p95 of 10 samples is the 10th sample
    /// (ceil(0.95·10) = 10), not the 9th.
    #[test]
    fn percentile_is_nearest_rank() {
        let h: Histogram = (1..=10u64).collect();
        assert_eq!(h.p95(), 10, "p95 of 10 samples is the 10th");
        assert_eq!(h.percentile(90.0), 9, "ceil(0.9·10) = 9");
        assert_eq!(h.percentile(91.0), 10, "ceil(0.91·10) = 10");
        assert_eq!(h.p50(), 5, "ceil(0.5·10) = 5");
        assert_eq!(h.percentile(0.0), 1, "p0 clamps to the minimum");
        assert_eq!(h.percentile(100.0), 10);
        let single: Histogram = [7u64].into_iter().collect();
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(single.percentile(p), 7);
        }
    }

    /// Percentiles stay correct across interleaved adds (the sorted order
    /// is re-established after every mutation).
    #[test]
    fn percentile_resorts_after_new_samples() {
        let mut h: Histogram = [5u64, 1].into_iter().collect();
        assert_eq!(h.p50(), 1, "ceil(0.5·2) = 1 → smallest");
        h.add(3);
        assert_eq!(h.p50(), 3, "new sample lands mid-order");
        h.extend([0u64, 9]);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(100.0), 9);
        assert_eq!(h.p50(), 3);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn merge_and_extend() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [3u64].into_iter().collect();
        a.merge(&b);
        a.extend([4u64]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.total(), 10);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn equality_is_order_independent() {
        let a: Histogram = [3u64, 1, 2].into_iter().collect();
        let b: Histogram = [1u64, 2, 3].into_iter().collect();
        assert_eq!(a, b);
        let c: Histogram = [1u64, 2].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_validates_range() {
        Histogram::new().percentile(150.0);
    }
}
