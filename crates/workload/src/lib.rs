//! Workload generation and measurement for `groupview`.
//!
//! The paper contains no quantitative evaluation — its claims about the
//! binding schemes, replication policies, and recovery protocols are
//! qualitative. This crate turns those claims into numbers:
//!
//! * [`WorkloadSpec`] describes a population of client applications (how
//!   many, where they run, which objects they touch, read/write mix,
//!   operations per action);
//! * [`FaultScript`] schedules deterministic fault injections (node
//!   crashes/recoveries, client crashes, cleanup sweeps) at specific driver
//!   steps;
//! * [`Driver`] interleaves the clients **step by step** — one bind, one
//!   invocation, or one commit per step — so lock contention between
//!   concurrent actions is real, then collects [`RunMetrics`];
//! * [`Histogram`] and [`TextTable`] render the results the way the
//!   experiment harness prints them.

pub mod driver;
pub mod metrics;
pub mod spec;
pub mod table;

pub use crate::driver::{Driver, RunMetrics};
pub use crate::metrics::Histogram;
pub use crate::spec::{FaultAction, FaultScript, WorkloadSpec};
pub use crate::table::TextTable;
