//! Workload generation and measurement for `groupview`.
//!
//! The paper contains no quantitative evaluation — its claims about the
//! binding schemes, replication policies, and recovery protocols are
//! qualitative. This crate holds the vocabulary that turns those claims
//! into numbers:
//!
//! * [`WorkloadSpec`] describes a population of client applications (how
//!   many, where they run, which objects they touch, read/write mix,
//!   operations per action);
//! * [`FaultScript`] schedules deterministic fault injections (node
//!   crashes/recoveries, client crashes, cleanup sweeps) at specific
//!   driver steps — the legacy step-keyed format, kept because it
//!   converts losslessly into the scenario engine's time-keyed
//!   `FaultPlan` (`FaultPlan::from(script)`);
//! * [`RunMetrics`] is the record of everything a run measured — commits,
//!   the contention-vs-failure abort taxonomy for bind/invoke/commit,
//!   binding costs, [`Histogram`]s of per-action latency and messages;
//! * [`TextTable`] renders results the way the experiment harness prints
//!   them.
//!
//! The *execution engine* lives in `groupview-scenario`: its runner
//! (`run_plan`) interleaves the client state machines step by step and
//! fills in a [`RunMetrics`]. The old `workload::Driver` was retired after
//! the runner reproduced its runs bit for bit (the scenario crate's
//! `tests/parity.rs` pins the recorded legacy metrics).

pub mod metrics;
pub mod spec;
pub mod table;

pub use crate::metrics::{Histogram, RunMetrics};
pub use crate::spec::{FaultAction, FaultScript, WorkloadSpec};
pub use crate::table::TextTable;

/// Compile-time proof that workload results crossing a shard-thread
/// boundary are `Send`: each shard thread fills its own [`RunMetrics`]
/// and ships it back for merging. See `docs/SHARDING.md`.
#[cfg(test)]
mod send_boundary {
    fn assert_send<T: Send>() {}

    #[test]
    fn boundary_types_are_send() {
        assert_send::<crate::RunMetrics>();
        assert_send::<crate::Histogram>();
        assert_send::<crate::WorkloadSpec>();
        assert_send::<crate::FaultScript>();
        assert_send::<crate::FaultAction>();
        assert_send::<crate::TextTable>();
    }
}
