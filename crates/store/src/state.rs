//! Versioned, type-tagged object state snapshots.

use groupview_sim::wire::{Bytes, Codec, FRAME_OVERHEAD_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Commit version of an object state.
///
/// Every successful top-level commit that modified the object bumps its
/// version. Versions let recovery code and tests decide which of two stored
/// states is "the latest committed state" the paper's §3.1 talks about.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(u64);

impl Version {
    /// The version of a freshly created object.
    pub const INITIAL: Version = Version(0);

    /// Constructs a specific version (mostly for tests).
    pub const fn new(v: u64) -> Self {
        Version(v)
    }

    /// The raw counter.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The version after one more commit.
    #[must_use]
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies the concrete Rust type an object's bytes decode to.
///
/// Object stores hold opaque bytes; the replication layer keeps a registry
/// from `TypeTag` to a decode function (the analogue of Arjuna's C++ class
/// code being available at server nodes, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TypeTag(u32);

impl TypeTag {
    /// Creates a tag. Applications should use small, stable constants.
    pub const fn new(tag: u32) -> Self {
        TypeTag(tag)
    }

    /// The raw tag.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// A snapshot of a persistent object: its encoded state plus metadata.
///
/// This is what object stores keep on stable storage, what activation loads
/// into a server, and what commit processing copies back to the stores in
/// `St(A)`.
///
/// The payload is a reference-counted [`Bytes`]: cloning an `ObjectState`
/// (per cohort checkpoint, per store write-back participant) shares the
/// encoded state instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectState {
    /// Which registered type the bytes decode to.
    pub type_tag: TypeTag,
    /// Commit version of this snapshot.
    pub version: Version,
    /// Encoded object state (shared, immutable).
    pub data: Bytes,
}

impl ObjectState {
    /// The state of a newly created object (version [`Version::INITIAL`]).
    pub fn initial(type_tag: TypeTag, data: impl Into<Bytes>) -> Self {
        ObjectState {
            type_tag,
            version: Version::INITIAL,
            data: data.into(),
        }
    }

    /// A successor snapshot with new data and a bumped version.
    #[must_use]
    pub fn successor(&self, data: impl Into<Bytes>) -> Self {
        ObjectState {
            type_tag: self.type_tag,
            version: self.version.next(),
            data: data.into(),
        }
    }

    /// Approximate wire size in bytes, used for network cost accounting.
    pub fn wire_size(&self) -> usize {
        self.data.len() + FRAME_OVERHEAD_BYTES
    }
}

/// Wire codec for snapshot frames: `[type_tag: u32 LE][version: u64 LE]`
/// followed by the state bytes. Used by coordinator-cohort checkpointing to
/// push one encoded frame to every cohort; decoding slices the payload out
/// of the incoming frame without copying.
pub struct SnapshotCodec;

/// Size of the snapshot frame header ([`TypeTag`] + [`Version`]).
pub const SNAPSHOT_HEADER_BYTES: usize = 12;

impl Codec for SnapshotCodec {
    type Item = ObjectState;

    fn encode_into(item: &ObjectState, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&item.type_tag.raw().to_le_bytes());
        buf.extend_from_slice(&item.version.raw().to_le_bytes());
        buf.extend_from_slice(&item.data);
    }

    fn decode(bytes: &Bytes) -> Option<ObjectState> {
        let tag = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?);
        let version = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
        Some(ObjectState {
            type_tag: TypeTag::new(tag),
            version: Version::new(version),
            data: bytes.slice(SNAPSHOT_HEADER_BYTES..),
        })
    }
}

impl fmt::Display for ObjectState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} bytes)",
            self.type_tag,
            self.version,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        assert!(Version::INITIAL < Version::INITIAL.next());
        assert_eq!(Version::new(4).next().raw(), 5);
        assert_eq!(Version::new(2).to_string(), "v2");
    }

    #[test]
    fn successor_bumps_version_and_keeps_tag() {
        let s0 = ObjectState::initial(TypeTag::new(9), vec![1, 2]);
        let s1 = s0.successor(vec![3]);
        assert_eq!(s1.type_tag, TypeTag::new(9));
        assert_eq!(s1.version, Version::new(1));
        assert_eq!(s1.data, vec![3]);
        assert_eq!(s0.version, Version::INITIAL, "original untouched");
    }

    #[test]
    fn wire_size_tracks_payload() {
        let s = ObjectState::initial(TypeTag::new(1), vec![0; 100]);
        assert!(s.wire_size() >= 100);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn snapshot_codec_roundtrips_and_decodes_zero_copy() {
        use groupview_sim::wire::{self, WireEncoder};
        let enc = WireEncoder::new();
        let state = ObjectState {
            type_tag: TypeTag::new(7),
            version: Version::new(41),
            data: Bytes::from(vec![9u8, 8, 7, 6]),
        };
        let frame = SnapshotCodec::encode(&enc, &state);
        let before = wire::stats();
        let decoded = SnapshotCodec::decode(&frame).expect("well-formed");
        assert_eq!(wire::stats(), before, "decode must not allocate or copy");
        assert_eq!(decoded, state);
        assert_eq!(
            decoded.data.as_slice().as_ptr(),
            frame.as_slice()[SNAPSHOT_HEADER_BYTES..].as_ptr(),
            "payload is a slice of the frame"
        );
        // Truncated frames are rejected.
        assert!(SnapshotCodec::decode(&frame.slice(..11)).is_none());
        // An empty payload is legal.
        let empty = ObjectState::initial(TypeTag::new(1), Vec::new());
        let frame = SnapshotCodec::encode(&enc, &empty);
        assert_eq!(SnapshotCodec::decode(&frame).unwrap().data.len(), 0);
    }
}
