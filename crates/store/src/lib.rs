//! Object storage substrate for `groupview`.
//!
//! The paper's system model (§2.2, §3.1) assumes every persistent object has
//! a unique identifier (UID) and that its *passive* state lives in one or
//! more **object stores** — "filing systems for objects" on stable storage
//! that survive node crashes. Volatile storage on a node is lost whenever
//! that node crashes (§2.1).
//!
//! This crate provides those pieces:
//!
//! * [`Uid`] / [`UidGen`] — unique object identifiers,
//! * [`ObjectState`] — a type-tagged, versioned snapshot of an object,
//! * [`StableStore`] — one node's crash-surviving object store, including the
//!   prepared-transaction *intent log* used by two-phase commit,
//! * [`Volatile`] — an epoch-guarded cell whose contents evaporate when the
//!   owning node crashes,
//! * [`Stores`] — the registry of all stores with local and RPC accessors.
//!
//! # Example
//!
//! ```rust
//! use groupview_sim::{Sim, SimConfig, NodeId};
//! use groupview_store::{Stores, ObjectState, TypeTag, UidGen};
//!
//! let sim = Sim::new(SimConfig::new(1).with_nodes(2));
//! let stores = Stores::new(&sim);
//! let beta = NodeId::new(1);
//! stores.add_store(beta);
//!
//! let mut uids = UidGen::new(NodeId::new(0));
//! let uid = uids.next_uid();
//! let state = ObjectState::initial(TypeTag::new(1), b"hello".to_vec());
//! stores.write_local(beta, uid, state.clone())?;
//! assert_eq!(stores.read_local(beta, uid)?, state);
//!
//! // Stable storage survives a crash...
//! sim.crash(beta);
//! sim.recover(beta);
//! assert_eq!(stores.read_local(beta, uid)?, state);
//! # Ok::<(), groupview_store::StoreError>(())
//! ```

pub mod error;
pub mod registry;
pub mod stable;
pub mod state;
pub mod uid;
pub mod volatile;

pub use crate::error::StoreError;
pub use crate::registry::Stores;
pub use crate::stable::{StableStore, TxToken};
pub use crate::state::{ObjectState, SnapshotCodec, TypeTag, Version};
pub use crate::uid::{Uid, UidGen};
pub use crate::volatile::Volatile;

/// Compile-time proof that store values crossing a shard-thread boundary
/// are `Send`. `Stores`/`StableStore`/`Volatile` are shard-local (each
/// shard thread owns its stores exclusively), but uids, snapshots, and
/// errors travel in messages between shards. See `docs/SHARDING.md`.
#[cfg(test)]
mod send_boundary {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn boundary_types_are_send() {
        assert_send::<Uid>();
        assert_send::<UidGen>();
        assert_send::<ObjectState>();
        assert_send::<TypeTag>();
        assert_send::<Version>();
        assert_send::<StoreError>();
        assert_send::<TxToken>();
    }
}
