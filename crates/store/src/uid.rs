//! Unique identifiers for persistent objects.

use groupview_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A system-wide unique identifier for a persistent object.
///
/// The Object Storage service "assigns unique identifiers (UIDs)" to objects
/// (paper §2.2); the naming service maps user-level string names to UIDs and
/// UIDs to location information. We encode the creating node in the high
/// bits and a per-node counter in the low bits, so generation needs no
/// coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(u64);

impl Uid {
    const NODE_SHIFT: u32 = 40;

    /// Reconstructs a UID from its raw representation.
    pub const fn from_raw(raw: u64) -> Self {
        Uid(raw)
    }

    /// The raw representation.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The node that created this UID.
    pub const fn creator(self) -> NodeId {
        NodeId::new((self.0 >> Self::NODE_SHIFT) as u32)
    }

    /// The per-creator sequence number.
    pub const fn sequence(self) -> u64 {
        self.0 & ((1 << Self::NODE_SHIFT) - 1)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}.{}", self.creator().raw(), self.sequence())
    }
}

/// Generator of [`Uid`]s for one node.
///
/// ```rust
/// use groupview_sim::NodeId;
/// use groupview_store::UidGen;
/// let mut g = UidGen::new(NodeId::new(2));
/// let a = g.next_uid();
/// let b = g.next_uid();
/// assert_ne!(a, b);
/// assert_eq!(a.creator(), NodeId::new(2));
/// ```
#[derive(Debug, Clone)]
pub struct UidGen {
    node: NodeId,
    next: u64,
}

impl UidGen {
    /// Creates a generator for `node`.
    pub fn new(node: NodeId) -> Self {
        UidGen { node, next: 1 }
    }

    /// Returns a fresh UID.
    pub fn next_uid(&mut self) -> Uid {
        let seq = self.next;
        self.next += 1;
        Uid(((self.node.raw() as u64) << Uid::NODE_SHIFT) | seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uids_encode_creator_and_sequence() {
        let mut g = UidGen::new(NodeId::new(7));
        let u = g.next_uid();
        assert_eq!(u.creator(), NodeId::new(7));
        assert_eq!(u.sequence(), 1);
        assert_eq!(g.next_uid().sequence(), 2);
        assert_eq!(u.to_string(), "uid:7.1");
    }

    #[test]
    fn uids_from_different_nodes_never_collide() {
        let mut a = UidGen::new(NodeId::new(0));
        let mut b = UidGen::new(NodeId::new(1));
        let mut seen = HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next_uid()));
            assert!(seen.insert(b.next_uid()));
        }
    }

    #[test]
    fn raw_roundtrip() {
        let mut g = UidGen::new(NodeId::new(3));
        let u = g.next_uid();
        assert_eq!(Uid::from_raw(u.raw()), u);
    }
}
