//! Storage errors.

use crate::stable::TxToken;
use crate::uid::Uid;
use groupview_sim::{NetError, NodeId};
use std::error::Error;
use std::fmt;

/// Failures of object-store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The node has no object store configured.
    NoStore(NodeId),
    /// The node (and therefore its store) is currently crashed.
    NodeDown(NodeId),
    /// No state for the UID is present in the store.
    NotFound(Uid),
    /// A remote store access failed at the network level.
    Net(NetError),
    /// The transaction token is unknown to the intent log.
    TxUnknown(TxToken),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoStore(n) => write!(f, "node {n} has no object store"),
            StoreError::NodeDown(n) => write!(f, "object store on {n} is unavailable (node down)"),
            StoreError::NotFound(uid) => write!(f, "no state for {uid} in this store"),
            StoreError::Net(e) => write!(f, "remote store access failed: {e}"),
            StoreError::TxUnknown(t) => write!(f, "unknown prepared transaction {t}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for StoreError {
    fn from(e: NetError) -> Self {
        StoreError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_subject() {
        assert!(StoreError::NoStore(NodeId::new(1))
            .to_string()
            .contains("n1"));
        assert!(StoreError::NodeDown(NodeId::new(2))
            .to_string()
            .contains("down"));
        assert!(StoreError::Net(NetError::Timeout)
            .to_string()
            .contains("timed out"));
        assert!(StoreError::TxUnknown(TxToken::new(9))
            .to_string()
            .contains("tx:9"));
    }

    #[test]
    fn net_errors_convert_and_expose_source() {
        let e: StoreError = NetError::Dropped.into();
        assert_eq!(e, StoreError::Net(NetError::Dropped));
        assert!(Error::source(&e).is_some());
    }
}
