//! One node's stable object store with a two-phase-commit intent log.

use crate::error::StoreError;
use crate::state::ObjectState;
use crate::uid::Uid;
use groupview_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Token naming a prepared transaction in a store's intent log.
///
/// The atomic-action layer uses its action ids here; the store layer only
/// needs an opaque stable identifier (keeping this crate below the actions
/// crate in the dependency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxToken(u64);

impl TxToken {
    /// Wraps a raw transaction number.
    pub const fn new(raw: u64) -> Self {
        TxToken(raw)
    }

    /// The raw transaction number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0)
    }
}

/// A single node's stable object store.
///
/// Contents survive crashes of the owning node (paper §2.1: "any data stored
/// on stable storage remains unaffected by a crash"); *access* requires the
/// node to be up, which the [`crate::Stores`] registry enforces.
///
/// Besides committed object states the store keeps an **intent log** of
/// writes prepared by two-phase commit but not yet resolved. After a crash,
/// recovery inspects [`StableStore::indoubt`] and resolves each entry.
#[derive(Debug, Clone)]
pub struct StableStore {
    node: NodeId,
    objects: HashMap<Uid, ObjectState>,
    intents: HashMap<TxToken, Vec<(Uid, ObjectState)>>,
}

impl StableStore {
    /// Creates an empty store owned by `node`.
    pub fn new(node: NodeId) -> Self {
        StableStore {
            node,
            objects: HashMap::new(),
            intents: HashMap::new(),
        }
    }

    /// The node owning this store.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Reads the committed state of `uid`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the store holds no state for `uid`.
    pub fn read(&self, uid: Uid) -> Result<ObjectState, StoreError> {
        self.objects
            .get(&uid)
            .cloned()
            .ok_or(StoreError::NotFound(uid))
    }

    /// Installs a committed state for `uid`, replacing any previous one.
    pub fn write(&mut self, uid: Uid, state: ObjectState) {
        self.objects.insert(uid, state);
    }

    /// Deletes the state for `uid`. Returns whether anything was removed.
    pub fn remove(&mut self, uid: Uid) -> bool {
        self.objects.remove(&uid).is_some()
    }

    /// Whether the store holds a state for `uid`.
    pub fn contains(&self, uid: Uid) -> bool {
        self.objects.contains_key(&uid)
    }

    /// All UIDs stored here, in unspecified order.
    pub fn uids(&self) -> Vec<Uid> {
        self.objects.keys().copied().collect()
    }

    /// Number of committed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no committed objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    // ----- intent log (two-phase commit) -------------------------------

    /// Phase 1: durably records the writes of transaction `tx` without
    /// installing them.
    pub fn prepare(&mut self, tx: TxToken, writes: Vec<(Uid, ObjectState)>) {
        self.intents.insert(tx, writes);
    }

    /// Phase 2 (commit): installs the prepared writes of `tx`.
    ///
    /// # Errors
    ///
    /// [`StoreError::TxUnknown`] if `tx` was never prepared here (or was
    /// already resolved).
    pub fn commit(&mut self, tx: TxToken) -> Result<(), StoreError> {
        let writes = self.intents.remove(&tx).ok_or(StoreError::TxUnknown(tx))?;
        for (uid, state) in writes {
            self.objects.insert(uid, state);
        }
        Ok(())
    }

    /// Phase 2 (abort): discards the prepared writes of `tx`. Idempotent —
    /// aborting an unknown transaction is a no-op (presumed abort).
    pub fn abort(&mut self, tx: TxToken) {
        self.intents.remove(&tx);
    }

    /// Transactions prepared here but not yet resolved; recovery must decide
    /// each one (this reproduction uses presumed-abort).
    pub fn indoubt(&self) -> Vec<TxToken> {
        let mut v: Vec<TxToken> = self.intents.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ObjectState, TypeTag};

    fn st(data: &[u8]) -> ObjectState {
        ObjectState::initial(TypeTag::new(1), data.to_vec())
    }

    fn store() -> StableStore {
        StableStore::new(NodeId::new(0))
    }

    #[test]
    fn write_read_remove_roundtrip() {
        let mut s = store();
        let uid = Uid::from_raw(5);
        assert_eq!(s.read(uid), Err(StoreError::NotFound(uid)));
        s.write(uid, st(b"a"));
        assert_eq!(s.read(uid).unwrap().data, b"a");
        assert!(s.contains(uid));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.remove(uid));
        assert!(!s.remove(uid));
        assert!(s.is_empty());
    }

    #[test]
    fn uids_lists_everything() {
        let mut s = store();
        s.write(Uid::from_raw(1), st(b"x"));
        s.write(Uid::from_raw(2), st(b"y"));
        let mut uids = s.uids();
        uids.sort_unstable();
        assert_eq!(uids, vec![Uid::from_raw(1), Uid::from_raw(2)]);
    }

    #[test]
    fn prepare_then_commit_installs_writes() {
        let mut s = store();
        let uid = Uid::from_raw(9);
        s.write(uid, st(b"old"));
        let tx = TxToken::new(1);
        s.prepare(tx, vec![(uid, st(b"new"))]);
        // Not installed yet:
        assert_eq!(s.read(uid).unwrap().data, b"old");
        assert_eq!(s.indoubt(), vec![tx]);
        s.commit(tx).unwrap();
        assert_eq!(s.read(uid).unwrap().data, b"new");
        assert!(s.indoubt().is_empty());
        // Double commit is an error (already resolved).
        assert_eq!(s.commit(tx), Err(StoreError::TxUnknown(tx)));
    }

    #[test]
    fn prepare_then_abort_discards_writes() {
        let mut s = store();
        let uid = Uid::from_raw(9);
        s.write(uid, st(b"old"));
        let tx = TxToken::new(2);
        s.prepare(tx, vec![(uid, st(b"new"))]);
        s.abort(tx);
        assert_eq!(s.read(uid).unwrap().data, b"old");
        // Presumed abort: aborting again (or an unknown tx) is fine.
        s.abort(tx);
        s.abort(TxToken::new(77));
    }

    #[test]
    fn indoubt_is_sorted_and_complete() {
        let mut s = store();
        s.prepare(TxToken::new(3), vec![]);
        s.prepare(TxToken::new(1), vec![]);
        assert_eq!(s.indoubt(), vec![TxToken::new(1), TxToken::new(3)]);
    }
}
