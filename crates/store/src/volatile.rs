//! Epoch-guarded volatile state.

use groupview_sim::{NodeId, Sim};

/// A cell of volatile (non-stable) per-node state.
///
/// The paper's failure model (§2.1) says all volatile storage is lost when a
/// node crashes. Rather than requiring every subsystem to register crash
/// callbacks, a `Volatile<T>` records the owning node's *crash epoch* at the
/// last write; any access after a newer crash finds the cell stale and
/// resets it to `T::default()`. This makes "forgot to clear volatile state
/// on crash" bugs impossible by construction.
///
/// ```rust
/// use groupview_sim::{Sim, SimConfig, NodeId};
/// use groupview_store::Volatile;
///
/// let sim = Sim::new(SimConfig::new(0).with_nodes(1));
/// let n = NodeId::new(0);
/// let mut cell: Volatile<Vec<u32>> = Volatile::new(&sim, n);
/// cell.get_mut(&sim).push(7);
/// assert_eq!(cell.get(&sim), &[7]);
/// sim.crash(n);
/// sim.recover(n);
/// assert!(cell.get(&sim).is_empty(), "volatile contents lost in crash");
/// ```
#[derive(Debug, Clone)]
pub struct Volatile<T> {
    node: NodeId,
    epoch: u64,
    value: T,
}

impl<T: Default> Volatile<T> {
    /// Creates an empty cell owned by `node`, fresh as of now.
    pub fn new(sim: &Sim, node: NodeId) -> Self {
        Volatile {
            node,
            epoch: sim.epoch(node),
            value: T::default(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the cell's contents survived all crashes so far.
    pub fn is_fresh(&self, sim: &Sim) -> bool {
        self.epoch == sim.epoch(self.node)
    }

    fn refresh(&mut self, sim: &Sim) {
        let current = sim.epoch(self.node);
        if self.epoch != current {
            self.epoch = current;
            self.value = T::default();
        }
    }

    /// Reads the value, resetting it first if a crash intervened.
    pub fn get(&mut self, sim: &Sim) -> &T {
        self.refresh(sim);
        &self.value
    }

    /// Mutably accesses the value, resetting it first if a crash intervened.
    pub fn get_mut(&mut self, sim: &Sim) -> &mut T {
        self.refresh(sim);
        &mut self.value
    }

    /// Replaces the value, marking the cell fresh as of now.
    pub fn set(&mut self, sim: &Sim, value: T) {
        self.epoch = sim.epoch(self.node);
        self.value = value;
    }

    /// Takes the value out (leaving the default), honouring crash loss.
    pub fn take(&mut self, sim: &Sim) -> T {
        self.refresh(sim);
        std::mem::take(&mut self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupview_sim::SimConfig;

    fn world() -> (Sim, NodeId) {
        let sim = Sim::new(SimConfig::new(0).with_nodes(2));
        (sim, NodeId::new(0))
    }

    #[test]
    fn survives_while_node_stays_up() {
        let (sim, n) = world();
        let mut c: Volatile<u32> = Volatile::new(&sim, n);
        *c.get_mut(&sim) = 5;
        assert_eq!(*c.get(&sim), 5);
        assert!(c.is_fresh(&sim));
        assert_eq!(c.node(), n);
    }

    #[test]
    fn lost_on_crash_even_before_recovery_observed() {
        let (sim, n) = world();
        let mut c: Volatile<u32> = Volatile::new(&sim, n);
        *c.get_mut(&sim) = 5;
        sim.crash(n);
        assert!(!c.is_fresh(&sim));
        sim.recover(n);
        assert_eq!(*c.get(&sim), 0);
        assert!(c.is_fresh(&sim), "access re-freshens the cell");
    }

    #[test]
    fn crash_of_other_node_is_irrelevant() {
        let (sim, n) = world();
        let mut c: Volatile<u32> = Volatile::new(&sim, n);
        *c.get_mut(&sim) = 5;
        sim.crash(NodeId::new(1));
        assert_eq!(*c.get(&sim), 5);
    }

    #[test]
    fn set_and_take_respect_epochs() {
        let (sim, n) = world();
        let mut c: Volatile<String> = Volatile::new(&sim, n);
        c.set(&sim, "alive".into());
        assert_eq!(c.take(&sim), "alive");
        c.set(&sim, "doomed".into());
        sim.crash(n);
        sim.recover(n);
        assert_eq!(c.take(&sim), "", "value written before crash is gone");
    }

    #[test]
    fn repeated_crashes_each_invalidate() {
        let (sim, n) = world();
        let mut c: Volatile<u32> = Volatile::new(&sim, n);
        for round in 1..4u32 {
            *c.get_mut(&sim) = round;
            sim.crash(n);
            sim.recover(n);
            assert_eq!(*c.get(&sim), 0, "round {round}");
        }
    }
}
