//! Registry of all object stores in the world.

use crate::error::StoreError;
use crate::stable::{StableStore, TxToken};
use crate::state::ObjectState;
use crate::uid::Uid;
use groupview_sim::{NodeId, Sim};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Cheap, cloneable handle to every node's object store.
///
/// The paper assumes "at least one node (say β) whose object store contains
/// the state of the object" (§3.1); which nodes have stores at all is a
/// deployment choice, so stores are added explicitly with
/// [`Stores::add_store`].
///
/// All accessors enforce the failure model: a crashed node's store exists
/// (stable storage survives) but cannot be read or written until the node
/// recovers. Remote accessors ([`Stores::read_remote`],
/// [`Stores::write_remote`]) go through the simulated network and charge
/// message costs; write paths also charge the stable-storage force cost.
#[derive(Clone)]
pub struct Stores {
    sim: Sim,
    inner: Rc<RefCell<HashMap<NodeId, StableStore>>>,
    /// Nodes armed to crash in the two-phase-commit window: the next
    /// successful prepare staged at such a node arms a one-send crash
    /// budget, so the node dies right after acknowledging the prepare —
    /// i.e. **between prepare and commit**, leaving the transaction
    /// in-doubt for recovery to resolve (the §4 window the scenario
    /// engine's store nemesis targets).
    armed_prepare_crashes: Rc<RefCell<HashSet<NodeId>>>,
    /// Replica tombstones: `(node, uid)` pairs whose local state copy was
    /// migrated away. Control-plane metadata (held by the membership
    /// manager, writable even while the node is down): §4 recovery normally
    /// **re-includes** any state a recovering store still holds, which
    /// would resurrect a migrated-away replica — a retired pair is purged
    /// instead. Migrating a replica back clears the tombstone.
    retired: Rc<RefCell<HashSet<(NodeId, Uid)>>>,
}

impl fmt::Debug for Stores {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let map = self.inner.borrow();
        f.debug_struct("Stores")
            .field("nodes", &map.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Stores {
    /// Creates an empty registry bound to a simulation.
    pub fn new(sim: &Sim) -> Self {
        Stores {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(HashMap::new())),
            armed_prepare_crashes: Rc::new(RefCell::new(HashSet::new())),
            retired: Rc::new(RefCell::new(HashSet::new())),
        }
    }

    /// Tombstones `uid`'s state copy on `node`: the copy was migrated away
    /// and must not be re-included by recovery. May be called while the
    /// node is down (tombstones are control-plane metadata, not node
    /// state).
    pub fn retire(&self, node: NodeId, uid: Uid) {
        self.retired.borrow_mut().insert((node, uid));
    }

    /// Whether `uid`'s copy on `node` is tombstoned.
    pub fn is_retired(&self, node: NodeId, uid: Uid) -> bool {
        self.retired.borrow().contains(&(node, uid))
    }

    /// Clears a tombstone (the replica is migrating back onto `node`).
    pub fn unretire(&self, node: NodeId, uid: Uid) {
        self.retired.borrow_mut().remove(&(node, uid));
    }

    /// Arms the mid-commit fault point on `node`: its next successful
    /// prepare crashes it immediately after the prepare acknowledgement is
    /// sent, landing the crash between the two commit phases. One-shot;
    /// [`Stores::disarm_crash_after_prepare`] cancels an unfired trap.
    pub fn arm_crash_after_prepare(&self, node: NodeId) {
        self.armed_prepare_crashes.borrow_mut().insert(node);
    }

    /// Cancels an armed (and not yet fired) mid-commit fault point.
    pub fn disarm_crash_after_prepare(&self, node: NodeId) {
        self.armed_prepare_crashes.borrow_mut().remove(&node);
    }

    /// Equips `node` with an (empty) object store. Idempotent.
    pub fn add_store(&self, node: NodeId) {
        self.inner
            .borrow_mut()
            .entry(node)
            .or_insert_with(|| StableStore::new(node));
    }

    /// Whether `node` has an object store (regardless of liveness).
    pub fn has_store(&self, node: NodeId) -> bool {
        self.inner.borrow().contains_key(&node)
    }

    /// Nodes that have stores, sorted.
    pub fn store_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.inner.borrow().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Runs `f` against the store on `node` if the node is up.
    ///
    /// This is the low-level accessor used by server-side handlers that are
    /// already executing on `node`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoStore`] if the node has no store, or
    /// [`StoreError::NodeDown`] if it is crashed.
    pub fn with<R>(
        &self,
        node: NodeId,
        f: impl FnOnce(&mut StableStore) -> R,
    ) -> Result<R, StoreError> {
        if !self.sim.is_up(node) {
            return Err(StoreError::NodeDown(node));
        }
        let mut map = self.inner.borrow_mut();
        let store = map.get_mut(&node).ok_or(StoreError::NoStore(node))?;
        Ok(f(store))
    }

    /// Reads the committed state of `uid` from the store on `node` (local).
    ///
    /// # Errors
    ///
    /// See [`Stores::with`]; additionally [`StoreError::NotFound`].
    pub fn read_local(&self, node: NodeId, uid: Uid) -> Result<ObjectState, StoreError> {
        self.with(node, |s| s.read(uid))?
    }

    /// Writes a committed state to the store on `node` (local), charging the
    /// stable-storage force cost.
    ///
    /// # Errors
    ///
    /// See [`Stores::with`].
    pub fn write_local(
        &self,
        node: NodeId,
        uid: Uid,
        state: ObjectState,
    ) -> Result<(), StoreError> {
        self.with(node, |s| s.write(uid, state))?;
        self.sim.charge_stable_write();
        Ok(())
    }

    /// Reads `uid` from the store on `target` via RPC from `from`.
    ///
    /// # Errors
    ///
    /// Network failures surface as [`StoreError::Net`]; store-level failures
    /// as in [`Stores::read_local`].
    pub fn read_remote(
        &self,
        from: NodeId,
        target: NodeId,
        uid: Uid,
    ) -> Result<ObjectState, StoreError> {
        let this = self.clone();
        // Response size is approximated by a typical state size; exact
        // accounting would require running the handler first.
        self.sim
            .rpc_flat(from, target, 32, 256, move || this.read_local(target, uid))
    }

    /// Writes `state` for `uid` to the store on `target` via RPC from `from`.
    ///
    /// # Errors
    ///
    /// Network failures surface as [`StoreError::Net`]; store-level failures
    /// as in [`Stores::write_local`].
    pub fn write_remote(
        &self,
        from: NodeId,
        target: NodeId,
        uid: Uid,
        state: ObjectState,
    ) -> Result<(), StoreError> {
        let this = self.clone();
        let bytes = state.wire_size();
        self.sim.rpc_flat(from, target, bytes, 16, move || {
            this.write_local(target, uid, state)
        })
    }

    // ----- two-phase-commit participant operations (local) -------------

    /// Durably prepares writes for `tx` on `node`.
    ///
    /// # Errors
    ///
    /// See [`Stores::with`].
    pub fn prepare_local(
        &self,
        node: NodeId,
        tx: TxToken,
        writes: Vec<(Uid, ObjectState)>,
    ) -> Result<(), StoreError> {
        self.with(node, |s| s.prepare(tx, writes))?;
        self.sim.charge_stable_write();
        if self.armed_prepare_crashes.borrow_mut().remove(&node) {
            // The prepare is durably staged; the node now dies right after
            // its next send — the prepare ack — so the coordinator's commit
            // finds it down and the transaction is left in-doubt.
            self.sim.crash_after_sends(node, 1);
        }
        Ok(())
    }

    /// Commits prepared writes for `tx` on `node`.
    ///
    /// # Errors
    ///
    /// See [`Stores::with`]; additionally [`StoreError::TxUnknown`].
    pub fn commit_local(&self, node: NodeId, tx: TxToken) -> Result<(), StoreError> {
        let r = self.with(node, |s| s.commit(tx))?;
        self.sim.charge_stable_write();
        r
    }

    /// Aborts prepared writes for `tx` on `node` (no-op if unknown).
    ///
    /// # Errors
    ///
    /// See [`Stores::with`].
    pub fn abort_local(&self, node: NodeId, tx: TxToken) -> Result<(), StoreError> {
        self.with(node, |s| s.abort(tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TypeTag;
    use groupview_sim::SimConfig;

    fn world() -> (Sim, Stores) {
        let sim = Sim::new(SimConfig::new(2).with_nodes(3));
        let stores = Stores::new(&sim);
        stores.add_store(NodeId::new(1));
        stores.add_store(NodeId::new(2));
        (sim, stores)
    }

    fn st(data: &[u8]) -> ObjectState {
        ObjectState::initial(TypeTag::new(1), data.to_vec())
    }

    #[test]
    fn local_roundtrip_and_missing_store() {
        let (_sim, stores) = world();
        let uid = Uid::from_raw(1);
        assert_eq!(
            stores.read_local(NodeId::new(0), uid),
            Err(StoreError::NoStore(NodeId::new(0)))
        );
        stores.write_local(NodeId::new(1), uid, st(b"v")).unwrap();
        assert_eq!(stores.read_local(NodeId::new(1), uid).unwrap().data, b"v");
        assert_eq!(
            stores.read_local(NodeId::new(2), uid),
            Err(StoreError::NotFound(uid))
        );
        assert_eq!(stores.store_nodes(), vec![NodeId::new(1), NodeId::new(2)]);
        assert!(stores.has_store(NodeId::new(1)));
        assert!(!stores.has_store(NodeId::new(0)));
    }

    #[test]
    fn crashed_node_store_is_unavailable_but_durable() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(1);
        let n = NodeId::new(1);
        stores.write_local(n, uid, st(b"v")).unwrap();
        sim.crash(n);
        assert_eq!(stores.read_local(n, uid), Err(StoreError::NodeDown(n)));
        assert_eq!(
            stores.write_local(n, uid, st(b"w")),
            Err(StoreError::NodeDown(n))
        );
        sim.recover(n);
        assert_eq!(stores.read_local(n, uid).unwrap().data, b"v");
    }

    #[test]
    fn remote_read_and_write_use_the_network() {
        let (sim, stores) = world();
        let uid = Uid::from_raw(3);
        let before = sim.counters().delivered;
        stores
            .write_remote(NodeId::new(0), NodeId::new(1), uid, st(b"remote"))
            .unwrap();
        let got = stores
            .read_remote(NodeId::new(0), NodeId::new(1), uid)
            .unwrap();
        assert_eq!(got.data, b"remote");
        assert_eq!(
            sim.counters().delivered - before,
            4,
            "two RPCs = four messages"
        );
    }

    #[test]
    fn remote_access_to_down_node_is_a_net_error() {
        let (sim, stores) = world();
        sim.crash(NodeId::new(1));
        let err = stores
            .read_remote(NodeId::new(0), NodeId::new(1), Uid::from_raw(1))
            .unwrap_err();
        assert!(matches!(err, StoreError::Net(_)), "got {err:?}");
    }

    #[test]
    fn prepare_commit_via_registry() {
        let (_sim, stores) = world();
        let n = NodeId::new(1);
        let uid = Uid::from_raw(4);
        stores.write_local(n, uid, st(b"old")).unwrap();
        let tx = TxToken::new(11);
        stores
            .prepare_local(n, tx, vec![(uid, st(b"new"))])
            .unwrap();
        assert_eq!(stores.read_local(n, uid).unwrap().data, b"old");
        stores.commit_local(n, tx).unwrap();
        assert_eq!(stores.read_local(n, uid).unwrap().data, b"new");
    }

    #[test]
    fn prepare_abort_via_registry() {
        let (_sim, stores) = world();
        let n = NodeId::new(2);
        let uid = Uid::from_raw(5);
        stores.write_local(n, uid, st(b"old")).unwrap();
        let tx = TxToken::new(12);
        stores
            .prepare_local(n, tx, vec![(uid, st(b"new"))])
            .unwrap();
        stores.abort_local(n, tx).unwrap();
        assert_eq!(stores.read_local(n, uid).unwrap().data, b"old");
    }

    #[test]
    fn intent_log_survives_crash_for_recovery() {
        let (sim, stores) = world();
        let n = NodeId::new(1);
        let uid = Uid::from_raw(6);
        let tx = TxToken::new(13);
        stores
            .prepare_local(n, tx, vec![(uid, st(b"pending"))])
            .unwrap();
        sim.crash(n);
        sim.recover(n);
        let indoubt = stores.with(n, |s| s.indoubt()).unwrap();
        assert_eq!(indoubt, vec![tx], "prepared tx must survive the crash");
        stores.commit_local(n, tx).unwrap();
        assert_eq!(stores.read_local(n, uid).unwrap().data, b"pending");
    }

    #[test]
    fn armed_prepare_crash_fires_between_phases() {
        let (sim, stores) = world();
        let n1 = NodeId::new(1);
        let uid = Uid::from_raw(9);
        stores.write_local(n1, uid, st(b"old")).unwrap();
        stores.arm_crash_after_prepare(n1);
        let tx = TxToken::new(21);
        // Remote prepare: the ack send fires the armed crash.
        let this = stores.clone();
        let ok = sim
            .rpc_flat(NodeId::new(0), n1, 32, 16, move || {
                this.prepare_local(n1, tx, vec![(uid, st(b"new"))])
            })
            .is_ok();
        assert!(ok, "the coordinator hears the prepare ack");
        assert!(
            !sim.is_up(n1),
            "…and the node dies right after sending it — the commit that \
             follows will find it down"
        );
        sim.recover(n1);
        assert_eq!(
            stores.with(n1, |s| s.indoubt()).unwrap(),
            vec![tx],
            "the staged write survived as in-doubt"
        );
        // Disarm is a no-op once fired; arming and disarming leaves no trap.
        stores.arm_crash_after_prepare(n1);
        stores.disarm_crash_after_prepare(n1);
        stores.commit_local(n1, tx).unwrap();
        assert!(sim.is_up(n1), "no further crash");
        assert_eq!(stores.read_local(n1, uid).unwrap().data, b"new");
    }

    #[test]
    fn tombstones_track_retired_copies_even_while_down() {
        let (sim, stores) = world();
        let n = NodeId::new(1);
        let uid = Uid::from_raw(8);
        stores.write_local(n, uid, st(b"v")).unwrap();
        assert!(!stores.is_retired(n, uid));
        // Retiring works while the node is crashed: tombstones are
        // control-plane metadata, not node state.
        sim.crash(n);
        stores.retire(n, uid);
        assert!(stores.is_retired(n, uid));
        sim.recover(n);
        assert!(stores.is_retired(n, uid), "tombstones survive recovery");
        stores.unretire(n, uid);
        assert!(!stores.is_retired(n, uid));
    }

    #[test]
    fn stable_writes_charge_local_cost() {
        let (sim, stores) = world();
        let before = sim.now();
        stores
            .write_local(NodeId::new(1), Uid::from_raw(7), st(b"x"))
            .unwrap();
        assert!(sim.now() > before, "stable write must cost virtual time");
    }
}
