//! Exporters: Chrome trace-event JSON (loads in Perfetto / `chrome://tracing`)
//! and JSONL span lines — plus an in-binary validator so CI can assert a
//! generated trace is well-formed without external tooling.
//!
//! The trace layout convention used throughout the workspace:
//!
//! * `pid`  = shard index (one "process" per shard thread; solo runs use 0),
//! * `tid < 100`  = one track per simulated node (instant events from the
//!   sim trace: deliveries, losses, crashes, …),
//! * `tid = 100 + phase index`  = one track per action phase, carrying
//!   complete (`"X"`) span events. Phases never overlap on their own track
//!   within a shard because each world executes serially in virtual time.

use crate::phase::Phase;
use crate::registry::SpanRec;
use std::fmt::Write as _;

/// Track id offset for phase span tracks (`tid = PHASE_TID_BASE + index`).
pub const PHASE_TID_BASE: u32 = 100;

/// Escape a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSONL line for a span: `{"type":"span","action":..,"phase":..,...}`.
pub fn span_jsonl(shard: u32, span: &SpanRec) -> String {
    format!(
        "{{\"type\":\"span\",\"shard\":{},\"action\":{},\"phase\":\"{}\",\"start_us\":{},\"end_us\":{},\"dur_us\":{}}}",
        shard,
        span.action,
        span.phase.name(),
        span.start_us,
        span.end_us,
        span.duration_us(),
    )
}

/// Incremental builder for a Chrome trace-event file.
///
/// Events are appended pre-rendered; [`ChromeTrace::render`] wraps them in
/// the `{"traceEvents":[...]}` envelope Perfetto expects.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process (shard) `pid` in the Perfetto UI.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Name a track (`pid`,`tid`) in the Perfetto UI.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Append a complete (`"X"`) span event.
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        action: Option<u64>,
    ) {
        let args = match action {
            Some(a) => format!("{{\"action\":{a}}}"),
            None => "{}".to_string(),
        };
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"dur\":{dur_us},\"name\":\"{}\",\"args\":{args}}}",
            escape_json(name)
        ));
    }

    /// Append a phase span on its conventional track
    /// (`tid = PHASE_TID_BASE + phase index`).
    pub fn phase_span(&mut self, pid: u32, span: &SpanRec) {
        self.complete(
            pid,
            PHASE_TID_BASE + span.phase.index() as u32,
            span.phase.name(),
            span.start_us,
            span.duration_us(),
            Some(span.action),
        );
    }

    /// Declare the named phase tracks for shard `pid` (call once per shard).
    pub fn phase_tracks(&mut self, pid: u32) {
        for p in Phase::ALL {
            self.thread_name(pid, PHASE_TID_BASE + p.index() as u32, p.name());
        }
    }

    /// Append an instant (`"i"`) event, optionally with a detail string and
    /// causal action id in `args`.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: u64,
        detail: Option<&str>,
        action: Option<u64>,
    ) {
        let mut args = String::from("{");
        if let Some(d) = detail {
            let _ = write!(args, "\"detail\":\"{}\"", escape_json(d));
        }
        if let Some(a) = action {
            if args.len() > 1 {
                args.push(',');
            }
            let _ = write!(args, "\"action\":{a}");
        }
        args.push('}');
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"name\":\"{}\",\"args\":{args}}}",
            escape_json(name)
        ));
    }

    /// Render the complete trace file.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in the file (including metadata).
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Instant (`"i"`/`"I"`) events.
    pub instants: usize,
    /// Distinct `(pid, tid)` tracks carrying timed events.
    pub tracks: usize,
}

/// Validate a Chrome trace-event JSON file without a JSON library:
/// the envelope must hold a `traceEvents` array of objects, every event
/// needs `ph`/`pid`/`tid`, timed events need a numeric non-negative `ts`,
/// and `ts` must be monotone non-decreasing per `(pid, tid)` track in file
/// order — the property Perfetto relies on for our serially generated
/// traces.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let array = extract_trace_events_array(json)?;
    let objects = split_top_level_objects(array)?;
    let mut tracks: Vec<((i64, i64), u64)> = Vec::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    for (idx, obj) in objects.iter().enumerate() {
        let fields = object_fields(obj).map_err(|e| format!("event {idx}: {e}"))?;
        let ph =
            find_string(&fields, "ph").ok_or_else(|| format!("event {idx}: missing \"ph\""))?;
        let pid = find_number(&fields, "pid")
            .ok_or_else(|| format!("event {idx}: missing numeric \"pid\""))?;
        let tid = find_number(&fields, "tid")
            .ok_or_else(|| format!("event {idx}: missing numeric \"tid\""))?;
        if find_string(&fields, "name").is_none() {
            return Err(format!("event {idx}: missing \"name\""));
        }
        let timed = matches!(ph.as_str(), "X" | "i" | "I" | "B" | "E");
        if ph == "M" {
            continue;
        }
        if !timed {
            return Err(format!("event {idx}: unsupported phase type {ph:?}"));
        }
        let ts = find_number(&fields, "ts")
            .ok_or_else(|| format!("event {idx}: timed event missing numeric \"ts\""))?;
        if ts < 0 {
            return Err(format!("event {idx}: negative ts {ts}"));
        }
        if ph == "X" {
            let dur = find_number(&fields, "dur")
                .ok_or_else(|| format!("event {idx}: \"X\" event missing \"dur\""))?;
            if dur < 0 {
                return Err(format!("event {idx}: negative dur {dur}"));
            }
            spans += 1;
        } else if ph == "i" || ph == "I" {
            instants += 1;
        }
        let key = (pid, tid);
        match tracks.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if (ts as u64) < *last {
                    return Err(format!(
                        "event {idx}: ts {ts} goes backwards on track pid={pid} tid={tid} (last {last})"
                    ));
                }
                *last = ts as u64;
            }
            None => tracks.push((key, ts as u64)),
        }
    }
    Ok(TraceSummary {
        events: objects.len(),
        spans,
        instants,
        tracks: tracks.len(),
    })
}

/// Slice out the contents of the top-level `"traceEvents": [ ... ]` array.
fn extract_trace_events_array(json: &str) -> Result<&str, String> {
    let key = "\"traceEvents\"";
    let key_at = json.find(key).ok_or("missing \"traceEvents\" key")?;
    let after = &json[key_at + key.len()..];
    let rel = after.find('[').ok_or("no array after \"traceEvents\"")?;
    let body = &after[rel..];
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(&body[1..i]);
                }
            }
            _ => {}
        }
    }
    Err("unterminated traceEvents array".into())
}

/// Split an array body into its top-level `{...}` object slices.
fn split_top_level_objects(array: &str) -> Result<Vec<&str>, String> {
    let mut objects = Vec::new();
    let mut depth = 0i32;
    let mut start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in array.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced braces in traceEvents".into());
                }
                if depth == 0 {
                    objects.push(&array[start.take().unwrap()..=i]);
                }
            }
            ',' | ' ' | '\n' | '\r' | '\t' => {}
            c if depth == 0 => return Err(format!("unexpected {c:?} between events")),
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unterminated event object".into());
    }
    Ok(objects)
}

/// Tokenize the top-level `key: value` pairs of one JSON object. Values are
/// returned as raw slices (strings keep their quotes); nested objects and
/// arrays are skipped as opaque values, so free-form text inside `args`
/// cannot be mistaken for a key.
fn object_fields(obj: &str) -> Result<Vec<(String, String)>, String> {
    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("event is not an object")?;
    let bytes: Vec<char> = inner.chars().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    loop {
        while i < bytes.len() && (bytes[i].is_whitespace() || bytes[i] == ',') {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != '"' {
            return Err(format!("expected key string, found {:?}", bytes[i]));
        }
        let (key, next) = read_string(&bytes, i)?;
        i = next;
        while i < bytes.len() && bytes[i].is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != ':' {
            return Err(format!("missing ':' after key {key:?}"));
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("missing value for key {key:?}"));
        }
        let start = i;
        match bytes[i] {
            '"' => {
                let (_, next) = read_string(&bytes, i)?;
                i = next;
            }
            '{' | '[' => {
                let open = bytes[i];
                let close = if open == '{' { '}' } else { ']' };
                let mut depth = 0i32;
                let mut in_str = false;
                let mut esc = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    if in_str {
                        if esc {
                            esc = false;
                        } else if c == '\\' {
                            esc = true;
                        } else if c == '"' {
                            in_str = false;
                        }
                    } else if c == '"' {
                        in_str = true;
                    } else if c == open {
                        depth += 1;
                    } else if c == close {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(format!("unterminated nested value for key {key:?}"));
                }
            }
            _ => {
                while i < bytes.len() && bytes[i] != ',' {
                    i += 1;
                }
            }
        }
        let value: String = bytes[start..i].iter().collect();
        fields.push((key, value.trim().to_string()));
    }
    Ok(fields)
}

/// Read a quoted string starting at `bytes[at] == '"'`; returns the
/// unescaped content and the index just past the closing quote.
fn read_string(bytes: &[char], at: usize) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut i = at + 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => {
                i += 1;
                if i >= bytes.len() {
                    break;
                }
                match bytes[i] {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        // Keep \uXXXX opaque; validation never compares them.
                        out.push_str("\\u");
                    }
                    c => out.push(c),
                }
                i += 1;
            }
            '"' => return Ok((out, i + 1)),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn find_string(fields: &[(String, String)], key: &str) -> Option<String> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| {
        v.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or(v)
            .to_string()
    })
}

fn find_number(fields: &[(String, String)], key: &str) -> Option<i64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.split('.').next().unwrap_or(v).parse::<i64>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_validator() {
        let mut trace = ChromeTrace::new();
        trace.process_name(0, "shard 0");
        trace.thread_name(0, 1, "node-1");
        trace.phase_tracks(0);
        trace.instant(0, 1, "deliver", 10, Some("n0 -> n1 (24B)"), Some(7));
        trace.phase_span(
            0,
            &SpanRec {
                action: 7,
                phase: Phase::Invoke,
                start_us: 5,
                end_us: 40,
            },
        );
        trace.phase_span(
            0,
            &SpanRec {
                action: 8,
                phase: Phase::Invoke,
                start_us: 40,
                end_us: 55,
            },
        );
        let json = trace.render();
        let summary = validate_chrome_trace(&json).expect("generated trace must validate");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 2); // node-1 track + invoke phase track
        assert_eq!(summary.events, trace.len());
    }

    #[test]
    fn validator_rejects_backwards_ts_on_a_track() {
        let mut trace = ChromeTrace::new();
        trace.instant(0, 1, "a", 100, None, None);
        trace.instant(0, 1, "b", 50, None, None);
        let err = validate_chrome_trace(&trace.render()).unwrap_err();
        assert!(err.contains("goes backwards"), "unexpected error: {err}");
        // Same timestamps on *different* tracks are fine.
        let mut ok = ChromeTrace::new();
        ok.instant(0, 1, "a", 100, None, None);
        ok.instant(0, 2, "b", 50, None, None);
        validate_chrome_trace(&ok.render()).expect("distinct tracks are independent");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":1}]}")
                .is_err(),
            "X event without ts/dur/name must fail"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"ph\":\"q\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"x\"}]}"
            )
            .is_err(),
            "unknown phase type must fail"
        );
    }

    #[test]
    fn hostile_names_cannot_confuse_the_field_scanner() {
        let mut trace = ChromeTrace::new();
        // A note whose text looks like JSON fields and contains quotes.
        trace.instant(
            0,
            3,
            "note",
            12,
            Some("\"ts\": -9, \"pid\": 99} {injection"),
            None,
        );
        let json = trace.render();
        let summary = validate_chrome_trace(&json).expect("escaped content must stay opaque");
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 1);
    }

    #[test]
    fn span_jsonl_shape() {
        let line = span_jsonl(
            2,
            &SpanRec {
                action: 41,
                phase: Phase::Prepare,
                start_us: 1000,
                end_us: 1450,
            },
        );
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"shard\":2"));
        assert!(line.contains("\"action\":41"));
        assert!(line.contains("\"phase\":\"prepare\""));
        assert!(line.contains("\"dur_us\":450"));
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
