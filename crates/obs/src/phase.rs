//! The phase taxonomy: where an atomic action spends its time.

use std::fmt;

/// A protocol phase an action passes through. Spans are keyed by
/// `(action, phase)`; the taxonomy mirrors the paper's action lifecycle —
/// bind/probe at activation, lock acquisition and operation invocation
/// (with its multicast leg under active replication), then the two-phase
/// commit (prepare + commit) or the undo walk of an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Activation: selecting/joining servers and binding through the
    /// naming-and-binding service.
    Bind,
    /// The `GetView` state-entry fetch nested inside activation.
    Probe,
    /// Acquiring an object or database lock.
    LockAcquire,
    /// A whole operation invocation against the activated group.
    Invoke,
    /// The replicated leg of an invocation: the ordered multicast (active
    /// replication) or the coordinator's checkpoint fan-out.
    Multicast,
    /// Two-phase commit, phase 1: preparing every participant.
    Prepare,
    /// Two-phase commit, phase 2: forcing the decision and committing.
    Commit,
    /// Abort: running the undo stack.
    Undo,
    /// Typed multi-object transaction: the `Client::begin()` builder
    /// opening its top-level action.
    TxBegin,
    /// Typed multi-object transaction: one `tx.invoke` (auto-activate +
    /// lock + apply under the shared action).
    TxInvoke,
    /// Typed multi-object transaction: `tx.commit()` driving the store 2PC
    /// over the union of touched objects.
    TxCommit,
    /// A whole replica migration: the membership manager's transactional
    /// move of one replica between nodes (directory repoint + staged copy).
    Migrate,
    /// The state-copy leg nested inside a migration: reading the committed
    /// state from a current `St` member and staging it on the target.
    MigrateCopy,
    /// One drain pass over a draining node: migrating every replica it
    /// still hosts somewhere else.
    Drain,
}

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; 14] = [
        Phase::Bind,
        Phase::Probe,
        Phase::LockAcquire,
        Phase::Invoke,
        Phase::Multicast,
        Phase::Prepare,
        Phase::Commit,
        Phase::Undo,
        Phase::TxBegin,
        Phase::TxInvoke,
        Phase::TxCommit,
        Phase::Migrate,
        Phase::MigrateCopy,
        Phase::Drain,
    ];

    /// Number of phases (array dimensions in the registry).
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable lowercase name (JSONL/Chrome-trace event names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Bind => "bind",
            Phase::Probe => "probe",
            Phase::LockAcquire => "lock_acquire",
            Phase::Invoke => "invoke",
            Phase::Multicast => "multicast",
            Phase::Prepare => "prepare",
            Phase::Commit => "commit",
            Phase::Undo => "undo",
            Phase::TxBegin => "tx_begin",
            Phase::TxInvoke => "tx_invoke",
            Phase::TxCommit => "tx_commit",
            Phase::Migrate => "migrate",
            Phase::MigrateCopy => "migrate_copy",
            Phase::Drain => "drain",
        }
    }

    /// Position in [`Phase::ALL`] (the registry's array index).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert_eq!(Phase::COUNT, 14);
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        for n in names {
            assert_eq!(n, n.to_lowercase());
            assert_eq!(
                Phase::ALL
                    .iter()
                    .find(|p| p.name() == n)
                    .unwrap()
                    .to_string(),
                n
            );
        }
    }
}
