//! The per-shard metrics registry: counters plus causal span storage.
//!
//! One [`Registry`] lives in each simulated world (each shard thread owns
//! its own — the hot path is `Cell` bumps, never a lock). The registry is
//! **disabled by default**: every recording call starts with an inlined
//! `enabled` check and returns immediately without allocating, so wiring
//! the registry through the protocol layers costs nothing on unobserved
//! runs (the objects bench asserts zero added allocs/op).

use crate::phase::Phase;
use crate::snapshot::{MetricsSnapshot, PhaseStats};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A named monotonically increasing counter maintained by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Operation invocations started (single ops and batch frames).
    Invokes,
    /// Individual operations carried inside batch frames.
    BatchOps,
    /// Ordered multicasts issued to replica groups.
    Multicasts,
    /// Point-to-point RPCs issued (coordinator/single-copy legs).
    Rpcs,
    /// Locks granted.
    LocksAcquired,
    /// Lock requests refused (conflict).
    LocksRefused,
    /// Participants prepared in commit phase 1.
    Prepares,
    /// Top-level actions committed.
    Commits,
    /// Top-level actions aborted.
    Aborts,
    /// Undo operations executed while aborting.
    UndoOps,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 10] = [
        Counter::Invokes,
        Counter::BatchOps,
        Counter::Multicasts,
        Counter::Rpcs,
        Counter::LocksAcquired,
        Counter::LocksRefused,
        Counter::Prepares,
        Counter::Commits,
        Counter::Aborts,
        Counter::UndoOps,
    ];

    /// Number of counters (array dimensions in the registry).
    pub const COUNT: usize = Counter::ALL.len();

    /// Stable snake_case name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Invokes => "invokes",
            Counter::BatchOps => "batch_ops",
            Counter::Multicasts => "multicasts",
            Counter::Rpcs => "rpcs",
            Counter::LocksAcquired => "locks_acquired",
            Counter::LocksRefused => "locks_refused",
            Counter::Prepares => "prepares",
            Counter::Commits => "commits",
            Counter::Aborts => "aborts",
            Counter::UndoOps => "undo_ops",
        }
    }

    /// Position in [`Counter::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A completed causal span: one phase of one atomic action, in virtual
/// (simulated) microseconds. Spans are recorded whole — callers read the
/// sim clock before and after the phase and hand both stamps in — so the
/// registry never needs open-span bookkeeping on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Raw id of the atomic action this phase belongs to.
    pub action: u64,
    /// Which lifecycle phase the span covers.
    pub phase: Phase,
    /// Virtual start time, microseconds.
    pub start_us: u64,
    /// Virtual end time, microseconds (`>= start_us`).
    pub end_us: u64,
}

impl SpanRec {
    /// Span duration in virtual microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Per-node load attribution: how much work one node did during the
/// observation window. The rebalancer's *inputs* stay deterministic and
/// obs-independent (directory use counts + store sizes); these counters are
/// the shared **reporting** surface — `MetricsSnapshot.node_loads` — that
/// `ScenarioReport` and examples read. `node` is the raw node id (this
/// crate is dependency-free and does not know `NodeId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeLoad {
    /// Raw id of the node (`NodeId::raw()`).
    pub node: u32,
    /// Operation invocations executed by replicas hosted on this node.
    pub invokes: u64,
    /// Locks granted to actions whose client runs on this node.
    pub locks: u64,
    /// Network bytes delivered *to* this node.
    pub bytes_in: u64,
    /// Network bytes sent *from* this node (and delivered).
    pub bytes_out: u64,
}

impl NodeLoad {
    /// Whether every counter is zero (such entries are elided from
    /// snapshots).
    pub fn is_empty(&self) -> bool {
        self.invokes == 0 && self.locks == 0 && self.bytes_in == 0 && self.bytes_out == 0
    }

    /// Adds `other`'s counters into `self` (same node).
    pub fn absorb(&mut self, other: &NodeLoad) {
        self.invokes += other.invokes;
        self.locks += other.locks;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

#[derive(Default)]
struct RegistryCore {
    enabled: Cell<bool>,
    counters: [Cell<u64>; Counter::COUNT],
    spans: RefCell<Vec<SpanRec>>,
    /// Per-node invoke/lock attribution, indexed by raw node id (grown on
    /// demand; only touched while enabled).
    node_loads: RefCell<Vec<NodeLoad>>,
    /// Wire-pool stats absorbed from `groupview_sim::wire::stats()` deltas.
    wire_buffer_allocs: Cell<u64>,
    wire_pool_reuses: Cell<u64>,
    wire_bytes_copied: Cell<u64>,
    /// Events evicted from the sim's bounded trace ring.
    trace_dropped: Cell<u64>,
}

/// Cheap-to-clone handle to one world's metrics registry.
///
/// `!Send` by design (like the sim itself): each shard thread owns its own
/// registry and cross-shard aggregation happens by shipping
/// [`MetricsSnapshot`]s (which are `Send`) back to the launching thread and
/// merging them.
#[derive(Clone, Default)]
pub struct Registry {
    core: Rc<RegistryCore>,
}

impl Registry {
    /// A fresh registry, **disabled** (recording calls are no-ops).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off. Off is the default; the disabled path
    /// performs no allocation and no interior mutation beyond this flag.
    pub fn set_enabled(&self, on: bool) {
        self.core.enabled.set(on);
    }

    /// Whether recording is currently on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.get()
    }

    /// Bump `counter` by `n`. No-op while disabled.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.core.enabled.get() {
            let c = &self.core.counters[counter.index()];
            c.set(c.get() + n);
        }
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.core.counters[counter.index()].get()
    }

    /// Record a completed span for `(action, phase)` covering
    /// `start_us..end_us` virtual microseconds. No-op while disabled.
    #[inline]
    pub fn span(&self, action: u64, phase: Phase, start_us: u64, end_us: u64) {
        if self.core.enabled.get() {
            self.core.spans.borrow_mut().push(SpanRec {
                action,
                phase,
                start_us,
                end_us,
            });
        }
    }

    /// Attribute one replica-side invocation to `node` (raw id). No-op
    /// while disabled.
    #[inline]
    pub fn record_node_invoke(&self, node: u32) {
        if self.core.enabled.get() {
            self.node_slot(node, |slot| slot.invokes += 1);
        }
    }

    /// Attribute one granted lock to the client node `node` (raw id).
    /// No-op while disabled.
    #[inline]
    pub fn record_node_lock(&self, node: u32) {
        if self.core.enabled.get() {
            self.node_slot(node, |slot| slot.locks += 1);
        }
    }

    fn node_slot(&self, node: u32, f: impl FnOnce(&mut NodeLoad)) {
        let mut loads = self.core.node_loads.borrow_mut();
        let idx = node as usize;
        if loads.len() <= idx {
            loads.resize_with(idx + 1, NodeLoad::default);
            for (i, slot) in loads.iter_mut().enumerate() {
                slot.node = i as u32;
            }
        }
        f(&mut loads[idx]);
    }

    /// Absorb a delta of wire-pool statistics (buffer allocations, pool
    /// reuses, bytes copied). Unlike the hot-path recorders this is *not*
    /// gated on `enabled`: it is called once per run/quiesce from snapshot
    /// plumbing, and sharded aggregation needs the numbers even when span
    /// recording is off.
    pub fn record_wire(&self, buffer_allocs: u64, pool_reuses: u64, bytes_copied: u64) {
        let c = &self.core;
        c.wire_buffer_allocs
            .set(c.wire_buffer_allocs.get() + buffer_allocs);
        c.wire_pool_reuses
            .set(c.wire_pool_reuses.get() + pool_reuses);
        c.wire_bytes_copied
            .set(c.wire_bytes_copied.get() + bytes_copied);
    }

    /// Absorb a count of trace events dropped by the sim's bounded ring.
    pub fn record_trace_dropped(&self, n: u64) {
        let c = &self.core.trace_dropped;
        c.set(c.get() + n);
    }

    /// Drain and return every recorded span (oldest first). Counters and
    /// wire stats are untouched, but per-phase latency distributions in
    /// [`Registry::snapshot`] are built from the live span list — snapshot
    /// **before** draining when both are needed.
    pub fn take_spans(&self) -> Vec<SpanRec> {
        std::mem::take(&mut *self.core.spans.borrow_mut())
    }

    /// Number of spans currently buffered.
    pub fn span_count(&self) -> usize {
        self.core.spans.borrow().len()
    }

    /// Build a [`MetricsSnapshot`] of everything recorded so far: counter
    /// values, wire stats, and per-phase latency distributions derived from
    /// the buffered spans. The snapshot is `Send` and mergeable, so sharded
    /// runs snapshot on each shard thread and merge on the launcher.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for (slot, cell) in counters.iter_mut().zip(self.core.counters.iter()) {
            *slot = cell.get();
        }
        let mut phases: [PhaseStats; Phase::COUNT] = Default::default();
        for span in self.core.spans.borrow().iter() {
            phases[span.phase.index()].record(span.duration_us());
        }
        for stats in phases.iter_mut() {
            stats.seal();
        }
        MetricsSnapshot {
            worlds: 1,
            counters,
            phases,
            node_loads: self
                .core
                .node_loads
                .borrow()
                .iter()
                .filter(|l| !l.is_empty())
                .copied()
                .collect(),
            wire_buffer_allocs: self.core.wire_buffer_allocs.get(),
            wire_pool_reuses: self.core.wire_pool_reuses.get(),
            wire_bytes_copied: self.core.wire_bytes_copied.get(),
            trace_dropped: self.core.trace_dropped.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        assert!(!reg.is_enabled());
        reg.add(Counter::Invokes, 5);
        reg.span(1, Phase::Invoke, 0, 10);
        assert_eq!(reg.get(Counter::Invokes), 0);
        assert_eq!(reg.span_count(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::Invokes), 0);
        assert_eq!(snap.phase(Phase::Invoke).count(), 0);
    }

    #[test]
    fn enabled_registry_accumulates_counters_and_spans() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add(Counter::Invokes, 2);
        reg.add(Counter::Invokes, 1);
        reg.add(Counter::Commits, 1);
        reg.span(7, Phase::Invoke, 100, 250);
        reg.span(7, Phase::Commit, 250, 300);
        reg.span(8, Phase::Invoke, 300, 320);
        assert_eq!(reg.get(Counter::Invokes), 3);
        assert_eq!(reg.get(Counter::Commits), 1);
        assert_eq!(reg.span_count(), 3);

        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::Invokes), 3);
        assert_eq!(snap.phase(Phase::Invoke).count(), 2);
        assert_eq!(snap.phase(Phase::Invoke).total_us(), 150 + 20);
        assert_eq!(snap.phase(Phase::Commit).count(), 1);

        let spans = reg.take_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::Invoke);
        assert_eq!(spans[0].duration_us(), 150);
        assert_eq!(reg.span_count(), 0);
    }

    #[test]
    fn clones_share_state() {
        let reg = Registry::new();
        let alias = reg.clone();
        alias.set_enabled(true);
        reg.add(Counter::Aborts, 4);
        assert_eq!(alias.get(Counter::Aborts), 4);
    }

    #[test]
    fn wire_and_trace_dropped_accumulate_even_when_disabled() {
        let reg = Registry::new();
        reg.record_wire(10, 90, 4096);
        reg.record_wire(1, 9, 100);
        reg.record_trace_dropped(3);
        let snap = reg.snapshot();
        assert_eq!(snap.wire_buffer_allocs, 11);
        assert_eq!(snap.wire_pool_reuses, 99);
        assert_eq!(snap.wire_bytes_copied, 4196);
        assert_eq!(snap.trace_dropped, 3);
    }

    #[test]
    fn node_loads_attribute_per_node_and_respect_gating() {
        let reg = Registry::new();
        // Disabled: recorded nothing.
        reg.record_node_invoke(3);
        reg.record_node_lock(1);
        assert!(reg.snapshot().node_loads.is_empty());

        reg.set_enabled(true);
        reg.record_node_invoke(3);
        reg.record_node_invoke(3);
        reg.record_node_lock(1);
        let snap = reg.snapshot();
        // Zero entries are elided; the rest carry their raw node ids.
        assert_eq!(snap.node_loads.len(), 2);
        assert_eq!(snap.node_loads[0].node, 1);
        assert_eq!(snap.node_loads[0].locks, 1);
        assert_eq!(snap.node_loads[1].node, 3);
        assert_eq!(snap.node_loads[1].invokes, 2);
    }

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
