//! Mergeable, `Send` snapshots of a registry — the unit of cross-shard
//! aggregation.

use crate::phase::Phase;
use crate::registry::{Counter, NodeLoad};
use std::fmt;

/// Latency distribution for one phase, in virtual microseconds.
///
/// Samples are kept sorted; percentiles use the nearest-rank method (the
/// same convention as the workload crate's histogram), so merged
/// distributions report exact multiset percentiles rather than
/// approximations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    samples: Vec<u64>,
    sealed: bool,
}

impl PhaseStats {
    /// Add one span duration. Callers must [`PhaseStats::seal`] before
    /// reading percentiles.
    pub fn record(&mut self, duration_us: u64) {
        self.samples.push(duration_us);
        self.sealed = false;
    }

    /// Sort samples so percentile reads are exact. Idempotent.
    pub fn seal(&mut self) {
        if !self.sealed {
            self.samples.sort_unstable();
            self.sealed = true;
        }
    }

    /// Number of spans recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all span durations.
    pub fn total_us(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Nearest-rank percentile (`p` in 0..=100); 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        debug_assert!(self.sealed, "percentile read on unsealed PhaseStats");
        if self.samples.is_empty() {
            return 0;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median span duration.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile span duration.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// Longest span duration; 0 when empty.
    pub fn max_us(&self) -> u64 {
        self.samples.last().copied().unwrap_or(0)
    }

    /// Fold another distribution into this one (exact multiset union).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.samples.extend_from_slice(&other.samples);
        self.seal_force();
    }

    fn seal_force(&mut self) {
        self.sealed = false;
        self.seal();
    }
}

/// A `Send + Clone` snapshot of one (or several merged) registries.
///
/// Built on a shard thread by [`crate::Registry::snapshot`], shipped back
/// to the launcher, and merged across worlds at quiesce so a sharded run
/// reports one aggregate view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// How many world snapshots were merged into this one.
    pub worlds: u64,
    /// Counter values, indexed by [`Counter::index`].
    pub counters: [u64; Counter::COUNT],
    /// Per-phase latency distributions, indexed by [`Phase::index`].
    pub phases: [PhaseStats; Phase::COUNT],
    /// Per-node load attribution (invokes, locks, bytes), sorted by raw
    /// node id; zero-load nodes are elided. The rebalancer's report surface
    /// and `ScenarioReport`'s per-node lines both read this field.
    pub node_loads: Vec<NodeLoad>,
    /// Wire buffers allocated fresh (pool misses), from the sim wire layer.
    pub wire_buffer_allocs: u64,
    /// Wire buffers served from the pool (pool hits).
    pub wire_pool_reuses: u64,
    /// Payload bytes copied onto the wire.
    pub wire_bytes_copied: u64,
    /// Trace events evicted from the sim's bounded trace ring.
    pub trace_dropped: u64,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self {
            worlds: 0,
            counters: [0; Counter::COUNT],
            phases: Default::default(),
            node_loads: Vec::new(),
            wire_buffer_allocs: 0,
            wire_pool_reuses: 0,
            wire_bytes_copied: 0,
            trace_dropped: 0,
        }
    }
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Latency distribution of one phase.
    pub fn phase(&self, p: Phase) -> &PhaseStats {
        &self.phases[p.index()]
    }

    /// Fold another snapshot into this one: counters and wire stats add,
    /// phase distributions take the multiset union.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.worlds += other.worlds;
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            *mine += theirs;
        }
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.merge(theirs);
        }
        for load in &other.node_loads {
            self.absorb_node_load(load);
        }
        self.wire_buffer_allocs += other.wire_buffer_allocs;
        self.wire_pool_reuses += other.wire_pool_reuses;
        self.wire_bytes_copied += other.wire_bytes_copied;
        self.trace_dropped += other.trace_dropped;
    }

    /// Fold one node's load into the snapshot, keeping `node_loads`
    /// sorted by raw node id (counters of an existing entry add).
    pub fn absorb_node_load(&mut self, load: &NodeLoad) {
        if load.is_empty() {
            return;
        }
        match self.node_loads.binary_search_by_key(&load.node, |l| l.node) {
            Ok(i) => self.node_loads[i].absorb(load),
            Err(i) => self.node_loads.insert(i, *load),
        }
    }

    /// The load entry for one raw node id, if any work was attributed.
    pub fn node_load(&self, node: u32) -> Option<&NodeLoad> {
        self.node_loads
            .binary_search_by_key(&node, |l| l.node)
            .ok()
            .map(|i| &self.node_loads[i])
    }

    /// Multi-line per-node load breakdown (empty string when no node work
    /// was attributed). One line per node: invokes, locks, bytes in/out.
    pub fn node_load_breakdown(&self) -> String {
        let mut out = String::new();
        for l in &self.node_loads {
            out.push_str(&format!(
                "  node {:<4} invokes={:<8} locks={:<8} in={:<10} out={:<10}\n",
                l.node, l.invokes, l.locks, l.bytes_in, l.bytes_out,
            ));
        }
        out
    }

    /// Total spans across all phases.
    pub fn span_count(&self) -> u64 {
        self.phases.iter().map(PhaseStats::count).sum()
    }

    /// Wire pool hit rate in 0..=1 (1.0 when no buffer was ever needed).
    pub fn wire_pool_hit_rate(&self) -> f64 {
        let total = self.wire_buffer_allocs + self.wire_pool_reuses;
        if total == 0 {
            1.0
        } else {
            self.wire_pool_reuses as f64 / total as f64
        }
    }

    /// Multi-line per-phase latency breakdown — the plain-text "flame"
    /// view appended to scenario reports. One line per non-empty phase
    /// with count, share of total span time, p50/p95/max.
    pub fn phase_breakdown(&self) -> String {
        let grand_total: u64 = self.phases.iter().map(PhaseStats::total_us).sum();
        let mut out = String::new();
        for p in Phase::ALL {
            let stats = self.phase(p);
            if stats.count() == 0 {
                continue;
            }
            let share = if grand_total == 0 {
                0.0
            } else {
                100.0 * stats.total_us() as f64 / grand_total as f64
            };
            out.push_str(&format!(
                "  {:<12} n={:<6} {:>5.1}% of span time | p50={:>6}us p95={:>6}us max={:>6}us\n",
                p.name(),
                stats.count(),
                share,
                stats.p50(),
                stats.p95(),
                stats.max_us(),
            ));
        }
        if out.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics snapshot ({} world(s)):", self.worlds)?;
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                writeln!(f, "  {:<14} {v}", c.name())?;
            }
        }
        writeln!(
            f,
            "  wire: {} allocs, {} reuses ({:.1}% pool hits), {} bytes copied; trace dropped {}",
            self.wire_buffer_allocs,
            self.wire_pool_reuses,
            100.0 * self.wire_pool_hit_rate(),
            self.wire_bytes_copied,
            self.trace_dropped,
        )?;
        write!(f, "{}", self.phase_breakdown())
    }
}

// The snapshot must cross shard-thread boundaries.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<MetricsSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[u64]) -> PhaseStats {
        let mut s = PhaseStats::default();
        for &v in samples {
            s.record(v);
        }
        s.seal();
        s
    }

    #[test]
    fn nearest_rank_percentiles() {
        let s = stats(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.p50(), 50);
        assert_eq!(s.p95(), 100);
        assert_eq!(s.percentile(10.0), 10);
        assert_eq!(s.max_us(), 100);
        assert_eq!(s.count(), 10);
        assert_eq!(s.total_us(), 550);
        let empty = stats(&[]);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.max_us(), 0);
    }

    #[test]
    fn merge_is_exact_multiset_union() {
        let mut a = stats(&[5, 100]);
        let b = stats(&[1, 50, 200]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.percentile(20.0), 1);
        assert_eq!(a.max_us(), 200);
        // Same result as recording everything into one distribution.
        assert_eq!(a, stats(&[1, 5, 50, 100, 200]));
    }

    #[test]
    fn snapshot_merge_adds_counters_and_unions_phases() {
        let mut a = MetricsSnapshot {
            worlds: 1,
            ..Default::default()
        };
        a.counters[Counter::Invokes.index()] = 3;
        a.phases[Phase::Invoke.index()] = stats(&[10, 30]);
        a.wire_buffer_allocs = 2;
        a.wire_pool_reuses = 8;

        let mut b = MetricsSnapshot {
            worlds: 1,
            ..Default::default()
        };
        b.counters[Counter::Invokes.index()] = 4;
        b.phases[Phase::Invoke.index()] = stats(&[20]);
        b.wire_bytes_copied = 512;
        b.trace_dropped = 7;

        a.merge(&b);
        assert_eq!(a.worlds, 2);
        assert_eq!(a.counter(Counter::Invokes), 7);
        assert_eq!(a.phase(Phase::Invoke).count(), 3);
        assert_eq!(a.phase(Phase::Invoke).p50(), 20);
        assert_eq!(a.wire_buffer_allocs, 2);
        assert_eq!(a.wire_pool_reuses, 8);
        assert_eq!(a.wire_bytes_copied, 512);
        assert_eq!(a.trace_dropped, 7);
        assert!((a.wire_pool_hit_rate() - 0.8).abs() < 1e-9);
        assert_eq!(a.span_count(), 3);
    }

    #[test]
    fn node_loads_merge_by_node_id() {
        let mut a = MetricsSnapshot::default();
        a.absorb_node_load(&NodeLoad {
            node: 2,
            invokes: 5,
            ..Default::default()
        });
        a.absorb_node_load(&NodeLoad {
            node: 7,
            bytes_in: 100,
            ..Default::default()
        });
        let mut b = MetricsSnapshot::default();
        b.absorb_node_load(&NodeLoad {
            node: 2,
            locks: 3,
            bytes_out: 40,
            ..Default::default()
        });
        b.absorb_node_load(&NodeLoad {
            node: 1,
            invokes: 1,
            ..Default::default()
        });
        a.merge(&b);
        let nodes: Vec<u32> = a.node_loads.iter().map(|l| l.node).collect();
        assert_eq!(nodes, vec![1, 2, 7], "sorted union");
        let n2 = a.node_load(2).unwrap();
        assert_eq!((n2.invokes, n2.locks, n2.bytes_out), (5, 3, 40));
        assert!(a.node_load(9).is_none());
        let text = a.node_load_breakdown();
        assert!(text.contains("node 2"), "{text}");
        assert!(text.contains("out=40"), "{text}");
        // Empty loads never enter the list.
        a.absorb_node_load(&NodeLoad::default());
        assert_eq!(a.node_loads.len(), 3);
    }

    #[test]
    fn breakdown_lists_only_non_empty_phases() {
        let mut snap = MetricsSnapshot::default();
        snap.phases[Phase::Bind.index()] = stats(&[100]);
        snap.phases[Phase::Commit.index()] = stats(&[300]);
        let text = snap.phase_breakdown();
        assert!(text.contains("bind"));
        assert!(text.contains("commit"));
        assert!(!text.contains("multicast"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("25.0%"));

        let empty = MetricsSnapshot::default();
        assert!(empty.phase_breakdown().contains("no spans recorded"));
        assert!(!empty.to_string().is_empty());
    }
}
