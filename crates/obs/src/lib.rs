//! # groupview-obs — causal spans, metrics registry, exporters
//!
//! Unified observability for the groupview workspace:
//!
//! * **Causal spans** ([`SpanRec`], [`Phase`]): each atomic action's
//!   lifecycle is broken into phases (bind → probe → lock → invoke /
//!   multicast → prepare → commit, or undo). Protocol layers record
//!   completed spans in virtual time at their existing choke points.
//! * **Metrics registry** ([`Registry`], [`Counter`]): per-world counters
//!   and span storage with a `Cell`-based lock-free hot path. Disabled by
//!   default; when disabled every recording call is an inlined early
//!   return that performs **zero allocations** (asserted by the objects
//!   bench), so observability costs nothing unless switched on.
//! * **Snapshots** ([`MetricsSnapshot`], [`PhaseStats`]): `Send`,
//!   mergeable aggregates. Sharded runs snapshot on each shard thread and
//!   merge on the launcher so a multi-world run reports one true total —
//!   including per-thread wire-pool stats that a single-thread read would
//!   miss.
//! * **Exporters** ([`ChromeTrace`], [`span_jsonl`],
//!   [`validate_chrome_trace`]): Chrome trace-event JSON that loads
//!   directly in Perfetto (one track per node, one per phase), JSONL span
//!   dumps, and a plain-text per-phase latency breakdown for scenario
//!   reports. The validator lets CI assert trace well-formedness (and
//!   monotone timestamps per track) in-binary, with no external tools.
//!
//! Determinism contract: recording reads the *virtual* clock only, draws
//! no randomness, and schedules nothing — an observed run is bit-for-bit
//! identical (virtual times, metrics, RNG draw count) to an unobserved run
//! of the same seed. A parity test pins this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod phase;
mod registry;
mod snapshot;

pub use export::{
    escape_json, span_jsonl, validate_chrome_trace, ChromeTrace, TraceSummary, PHASE_TID_BASE,
};
pub use phase::Phase;
pub use registry::{Counter, NodeLoad, Registry, SpanRec};
pub use snapshot::{MetricsSnapshot, PhaseStats};
