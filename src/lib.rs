//! # groupview
//!
//! A complete Rust implementation of the system described in
//!
//! > M.C. Little, D.L. McCue, S.K. Shrivastava, *"Maintaining Information
//! > about Persistent Replicated Objects in a Distributed System"*,
//! > Proceedings of the 13th International Conference on Distributed
//! > Computing Systems (ICDCS), Pittsburgh, May 1993, pp. 491–498.
//!
//! — persistent objects managed by nested atomic actions, replicated for
//! availability, with a **naming-and-binding service** (the Arjuna *group
//! view database*) that guarantees clients only ever bind to replicas that
//! are mutually consistent and hold the latest committed state.
//!
//! The system runs over a deterministic discrete-event simulation, so every
//! protocol behaviour — including crash interleavings such as "the server
//! executed the call, then died before replying" — is exactly reproducible
//! from a seed.
//!
//! ## Quick start
//!
//! ```rust
//! use groupview::{System, Counter, CounterOp, ReplicationPolicy};
//!
//! // A five-node world; node 0 hosts the naming service.
//! let sys = System::builder(42)
//!     .nodes(5)
//!     .policy(ReplicationPolicy::Active)
//!     .build();
//! let nodes = sys.sim().nodes();
//!
//! // A counter stored on three nodes, servable by the same three. The
//! // typed uid remembers the class.
//! let uid = sys.create_typed(Counter::new(0), &nodes[1..4], &nodes[1..4])?;
//!
//! // A client runs an atomic action against two active replicas through a
//! // typed handle: operations in, decoded replies out — no byte codecs.
//! let client = sys.client(nodes[4]);
//! let counter = uid.open(&client);
//! let action = client.begin_action();
//! counter.activate(action, 2)?;
//! assert_eq!(counter.invoke(action, CounterOp::Add(10))?, 10);
//! client.commit(action)?;
//!
//! // A crash of one replica is masked; the state is safe on every store.
//! // `Get` is read-only, so the handle takes a read lock automatically.
//! sys.sim().crash(nodes[1]);
//! let action = client.begin_action();
//! counter.activate(action, 2)?;
//! assert_eq!(counter.invoke(action, CounterOp::Get)?, 10);
//! client.commit(action)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The raw byte-level surface ([`Client::invoke`] with encoded ops) remains
//! available as an escape hatch; see `docs/OBJECTS.md` for the
//! [`ObjectType`]/[`ReplicaObject`] split and the encoder-ownership rules.
//!
//! Worlds are **elastic**: [`Membership`] adds fresh nodes and drains old
//! ones at runtime — each replica moved by a transactional migration that
//! repoints the directory and copies state atomically — and a
//! [`Rebalancer`] spreads placement by measured per-object load. See
//! `docs/MEMBERSHIP.md` and `examples/elastic_cluster.rs`.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `groupview-sim` | deterministic simulation kernel: virtual time, crashes, network model, RPC |
//! | [`store`] | `groupview-store` | UIDs, versioned object states, stable object stores, volatile cells |
//! | [`actions`] | `groupview-actions` | lock manager (incl. exclude-write mode), nested + nested-top-level atomic actions, two-phase commit |
//! | [`group`] | `groupview-group` | membership views, reliable totally-ordered multicast, election |
//! | [`core`] | `groupview-core` | **the paper's contribution**: Object Server / Object State databases, use lists, binding schemes, recovery, cleanup |
//! | [`obs`] | `groupview-obs` | observability: causal action spans, per-shard metrics registry, Perfetto/JSONL exporters |
//! | [`replication`] | `groupview-replication` | replication policies, activation, commit-time write-back, the [`System`] façade |
//! | [`membership`] | `groupview-membership` | elastic membership: add/drain nodes, transactional replica migration, stats-driven rebalancing |
//! | [`workload`] | `groupview-workload` | workload specs, legacy fault scripts, run metrics, tables |
//! | [`scenario`] | `groupview-scenario` | chaos + execution engine: the workload runner, time-keyed fault plans, seeded nemeses, history recorder, consistency oracle, scenario matrix, soak mode |
//!
//! The most common types are re-exported at the crate root.

pub use groupview_actions as actions;
pub use groupview_core as core;
pub use groupview_group as group;
pub use groupview_membership as membership;
pub use groupview_obs as obs;
pub use groupview_replication as replication;
pub use groupview_scenario as scenario;
pub use groupview_sim as sim;
pub use groupview_store as store;
pub use groupview_workload as workload;

pub use groupview_actions::{ActionId, LockMode, TxSystem};
pub use groupview_core::{
    BindError, Binder, BindingScheme, CleanupDaemon, DbError, ExcludePolicy, NamingService,
    RecoveryManager,
};
pub use groupview_membership::{
    DrainReport, Membership, MigrateError, MigrationPlan, Move, NodeLoadStat, NodeStatus,
    ObjectStat, RebalanceReport, Rebalancer,
};
pub use groupview_obs::{
    validate_chrome_trace, ChromeTrace, MetricsSnapshot, Phase, PhaseStats, Registry, SpanRec,
    TraceSummary,
};
pub use groupview_replication::{
    Account, AccountOp, ActivateError, Client, CommitError, Counter, CounterOp, Handle, HashRouter,
    InvokeError, KvMap, KvOp, KvReply, ObjectGroup, ObjectType, RangeRouter, ReplicaObject,
    ReplicationPolicy, ShardError, ShardRouter, ShardedClient, ShardedSystem, System,
    SystemBuilder, Tx, TxOpError, TypedUid,
};
pub use groupview_scenario::{
    canned_scenarios, run_matrix, run_plan, run_plan_typed, run_scenario, run_scenario_observed,
    run_scenario_sharded, run_scenario_sharded_observed, run_scenario_traced, run_soak, FaultPlan,
    History, ModelKind, Oracle, OracleReport, PlanAction, Scenario, ScenarioReport,
    ShardedScenarioReport, SoakConfig, SoakReport, TraceBundle, TracedRun,
};
pub use groupview_sim::{Bytes, ClientId, Codec, NetConfig, NodeId, Sim, SimConfig, WireEncoder};
pub use groupview_store::{ObjectState, SnapshotCodec, Stores, TypeTag, Uid, Version};
pub use groupview_workload::{FaultAction, FaultScript, RunMetrics, WorkloadSpec};
