//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the real `serde` cannot
//! be fetched. The repository only *derives* `Serialize`/`Deserialize` as a
//! forward-compatibility marker — no code path serialises anything — so this
//! crate provides the two trait names (for `use serde::{Serialize,
//! Deserialize}` imports) and, under the `derive` feature, re-exports the
//! no-op derive macros from the sibling `serde_derive` stub.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
