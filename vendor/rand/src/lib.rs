//! Offline stand-in for `rand` 0.9.
//!
//! The build environment has no registry access, so this crate supplies the
//! subset of the `rand` API the workspace actually calls:
//!
//! * [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`] for `f64`/integers/`bool`,
//! * [`Rng::random_range`] over half-open and inclusive integer ranges,
//! * [`Rng::random_bool`].
//!
//! The generator is splitmix64 — not cryptographic, but high-quality enough
//! for simulation jitter and fully deterministic, which is what the
//! simulation kernel requires (every run is a pure function of its seed).

use std::ops::{Range, RangeInclusive};

/// Minimal mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Minimal mirror of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw bits (mirror of the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                // Order-preserving shift so signed ranges work too.
                (self as i128 as u128) ^ (1u128 << 127)
            }
            fn from_u128(v: u128) -> Self {
                (v ^ (1u128 << 127)) as i128 as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`] (mirror of `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Modulo sampling: a hair biased, irrelevant for simulation jitter.
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u128(lo + sample_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo + 1;
        T::from_u128(lo + sample_below(rng, span))
    }
}

/// Minimal mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full-range distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, RR: SampleRange<T>>(&mut self, range: RR) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(0u64..17);
            assert!(v < 17);
            let w = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let s = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }
}
