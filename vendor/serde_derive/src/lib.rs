//! Offline stand-in for `serde_derive`.
//!
//! The workspace is built in an environment without access to crates.io, so
//! the real `serde_derive` cannot be fetched. Nothing in this repository
//! actually serialises through serde yet — the `#[derive(Serialize,
//! Deserialize)]` annotations only declare intent — so the derives here
//! accept the input and expand to nothing. When a real serialisation
//! backend lands, swap this crate for the genuine `serde_derive` by editing
//! `[workspace.dependencies]` in the root manifest.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
