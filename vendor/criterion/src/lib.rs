//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate supplies the
//! API surface the workspace's five bench targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. `cargo bench --no-run`
//! compiles exactly as with the real crate; `cargo bench` runs each closure
//! for a short calibrated burst and prints a mean wall-clock time per
//! iteration (no warm-up discipline, no outlier analysis, no HTML reports).
//! Swap in the real `criterion` via `[workspace.dependencies]` once
//! registry access exists.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier (mirror of `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_run: u64,
    nanos: u128,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One calibration call, then a short measured burst.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            // Keep each benchmark fast: a burst of at most ~50ms or 10k iters.
            if iters >= 10_000 || (iters.is_multiple_of(16) && start.elapsed().as_millis() >= 50) {
                break;
            }
        }
        self.iters_run = iters;
        self.nanos = start.elapsed().as_nanos();
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_run: 0,
        nanos: 0,
    };
    f(&mut bencher);
    if bencher.iters_run > 0 {
        let per_iter = bencher.nanos / bencher.iters_run as u128;
        println!(
            "{name:<48} {per_iter:>12} ns/iter ({} iters)",
            bencher.iters_run
        );
    } else {
        println!("{name:<48} (no measurement)");
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single named function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one member of the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Benchmarks one member with an explicit input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
