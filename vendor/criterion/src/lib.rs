//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate supplies the
//! API surface the workspace's bench targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. `cargo bench --no-run`
//! compiles exactly as with the real crate.
//!
//! `cargo bench` runs each closure with a measurement discipline modelled on
//! the real criterion (coarser, but no longer a single wall-clock mean):
//!
//! 1. **fixed warm-up** — `WARMUP_ITERS` calls (or until `WARMUP_MS`
//!    elapses) that are never measured, so cold caches, lazy pools, and
//!    first-touch allocations don't pollute the samples;
//! 2. **sampling** — up to [`SAMPLES`] timed bursts of equal iteration
//!    count, sized from the warm-up so the whole benchmark stays fast;
//! 3. **median-of-samples reporting** — the median per-iteration time is
//!    reported (robust to scheduler noise and one-off outliers), together
//!    with the min..max sample spread so jitter is visible in the log.
//!
//! No outlier rejection beyond the median, no regression deltas, no HTML
//! reports. Swap in the real `criterion` via `[workspace.dependencies]`
//! once registry access exists.

use std::fmt::Display;
use std::time::Instant;

/// Un-timed warm-up iterations before sampling starts.
const WARMUP_ITERS: u64 = 32;
/// Warm-up time cap, for slow benchmark bodies.
const WARMUP_MS: u128 = 20;
/// Timed sample bursts per benchmark.
const SAMPLES: usize = 15;
/// Iterations per sample burst (derived; at least this many).
const MIN_ITERS_PER_SAMPLE: u64 = 1;
/// Total measurement budget per benchmark.
const MEASURE_MS: u128 = 60;

/// Benchmark identifier (mirror of `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Per-iteration nanoseconds of each timed sample.
    samples: Vec<f64>,
    iters_run: u64,
}

impl Bencher {
    /// Runs `routine` through warm-up then timed sample bursts, recording a
    /// per-iteration time per burst.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Fixed warm-up: never measured.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < WARMUP_ITERS && warm_start.elapsed().as_millis() < WARMUP_MS {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let warm_elapsed = warm_start.elapsed();

        // Size each sample burst so SAMPLES bursts fit the budget.
        let per_iter_ns = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = (MEASURE_MS * 1_000_000) as f64;
        let iters_per_sample = ((budget_ns / SAMPLES as f64 / per_iter_ns) as u64)
            .clamp(MIN_ITERS_PER_SAMPLE, 100_000);

        let run_start = Instant::now();
        for _ in 0..SAMPLES {
            let sample_start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let nanos = sample_start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / iters_per_sample as f64);
            self.iters_run += iters_per_sample;
            if run_start.elapsed().as_millis() >= MEASURE_MS {
                break; // budget spent; report the samples we have
            }
        }
    }
}

/// Machine-readable summary statistics of one measured series.
///
/// This is the shared report schema for the whole workspace: `run_one`
/// emits one [`Summary::to_json`] line per benchmark (under
/// `CRITERION_JSON=1`), and `groupview-bench`'s trajectory recorder embeds
/// the same objects in `BENCH_trajectory.json` — so bench logs and
/// experiment artifacts are comparable field-for-field. Units are
/// whatever the producer measured (nanoseconds per iteration here;
/// recorders say in `name` what they sampled).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// What was measured (benchmark id, or `<series>/<metric>`).
    pub name: String,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median (mean of the middle pair for even counts).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample set (returns zeros when empty).
    pub fn from_samples(name: impl Into<String>, samples: &[f64]) -> Summary {
        let name = name.into();
        if samples.is_empty() {
            return Summary {
                name,
                mean: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        let median = median(&mut sorted);
        Summary {
            name,
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            median,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }

    /// Renders the summary as one JSON object (hand-rolled: the offline
    /// workspace has no serde). Numbers are emitted with enough precision
    /// to round-trip; the name is escaped for quotes and backslashes.
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.3}")
            } else {
                "null".to_string()
            }
        }
        let name = self.name.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"name\":\"{}\",\"mean\":{},\"median\":{},\"min\":{},\"max\":{}}}",
            name,
            num(self.mean),
            num(self.median),
            num(self.min),
            num(self.max)
        )
    }
}

/// Median of a sample set (mean of the middle pair for even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(SAMPLES),
        iters_run: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    let lo = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let med = median(&mut bencher.samples);
    println!(
        "{name:<48} {med:>12.0} ns/iter (median of {} samples, {:.0}..{:.0} ns, {} iters)",
        bencher.samples.len(),
        lo,
        hi,
        bencher.iters_run
    );
    // Machine-readable mirror of the line above, one JSON object per
    // benchmark, opt-in so human-facing logs stay uncluttered.
    if std::env::var_os("CRITERION_JSON").is_some() {
        println!(
            "CRITERION_JSON {}",
            Summary::from_samples(name, &bencher.samples).to_json()
        );
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single named function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one member of the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Benchmarks one member with an explicit input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sets() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn summary_statistics_and_json() {
        let s = Summary::from_samples("grp/bench", &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(
            s.to_json(),
            "{\"name\":\"grp/bench\",\"mean\":2.500,\"median\":2.500,\"min\":1.000,\"max\":4.000}"
        );
        let empty = Summary::from_samples("e", &[]);
        assert_eq!(empty.mean, 0.0);
        let quoted = Summary::from_samples("a\"b\\c", &[1.0]);
        assert!(quoted.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn bencher_collects_multiple_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_run: 0,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert!(b.samples.len() > 1, "median needs multiple samples");
        assert!(calls > WARMUP_ITERS, "warm-up plus measured bursts ran");
        assert_eq!(
            calls,
            WARMUP_ITERS + b.iters_run,
            "every non-warm-up call is accounted to a sample"
        );
    }
}
