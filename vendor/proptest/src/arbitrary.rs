//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn generate(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text round-trippable everywhere.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

/// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
