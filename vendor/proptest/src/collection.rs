//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Acceptable size arguments for [`vec`].
pub trait SizeRange {
    /// Inclusive (min, max) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min + 1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
