//! String generation from a small regex subset.
//!
//! Real proptest compiles full regexes into strategies. The workspace only
//! uses simple patterns — sequences of character classes (`[a-zA-Z0-9/_.-]`),
//! the Unicode escape `\PC` ("any non-control character"), and literal
//! characters, each optionally followed by a `{min,max}` repetition — so
//! that subset is what this parser supports. Unsupported syntax panics with
//! a pointer here rather than generating wrong data silently.

use crate::test_runner::TestRng;

enum Atom {
    /// Sample uniformly from this set of characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// The stand-in's interpretation of `\PC`: printable ASCII plus a few
/// multi-byte code points, so byte-length-prefixed encodings get exercised
/// with `char` lengths of 2, 3, and 4 bytes (real proptest samples all of
/// non-control Unicode here).
fn printable() -> Vec<char> {
    (b' '..=b'~')
        .map(|b| b as char)
        .chain(['é', 'ß', '→', '日', '🦀'])
        .collect()
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let rest: String = chars[i + 1..].iter().collect();
                if rest.starts_with("PC") {
                    i += 3;
                    Atom::Class(printable())
                } else if let Some(&escaped) = chars.get(i + 1) {
                    i += 2;
                    Atom::Class(vec![escaped])
                } else {
                    panic!("dangling \\ in pattern {pattern:?}");
                }
            }
            c if c != '{' && c != '}' => {
                i += 1;
                Atom::Class(vec![c])
            }
            _ => panic!(
                "unsupported pattern syntax at {i} in {pattern:?} \
                 (extend vendor/proptest/src/string.rs)"
            ),
        };
        // Optional {min,max} / {n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {min,max}"),
                    hi.trim().parse().expect("bad {min,max}"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        let Atom::Class(set) = &piece.atom;
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        for _ in 0..count {
            out.push(set[rng.below(set.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let s = sample_pattern("[a-zA-Z0-9/_.-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_.-".contains(c)));
        }
    }

    #[test]
    fn printable_escape() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = sample_pattern("\\PC{0,32}", &mut rng);
            // {0,32} bounds the repetition count (chars), not the byte
            // length — multi-byte code points make these differ.
            assert!(s.chars().count() <= 32);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
