//! Configuration and deterministic RNG for the stand-in test runner.

/// Mirror of `proptest::test_runner::Config` (only the fields this
/// workspace sets; the rest exist so `..Default::default()` keeps working
/// if more are added upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Unused by the stand-in (no shrinking); kept for source compatibility.
    pub max_shrink_iters: u32,
    /// Unused by the stand-in; kept for source compatibility.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic splitmix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives a stable per-test seed from the test's name, so every run of
    /// a given property sees the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}
