//! Value-generation strategies: the sampling core of the stand-in.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler from a [`TestRng`].
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(pub Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Integer types usable as range-strategy endpoints.
pub trait RangeValue: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u128(self) -> u128 {
                (self as i128 as u128) ^ (1u128 << 127)
            }
            fn from_u128(v: u128) -> Self {
                (v ^ (1u128 << 127)) as i128 as $t
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn below(rng: &mut TestRng, span: u128) -> u128 {
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample empty range strategy");
        T::from_u128(lo + below(rng, hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample empty range strategy");
        T::from_u128(lo + below(rng, hi - lo + 1))
    }
}

/// String literals act as regex-subset string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
