//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], tuple and
//!   range strategies, string-pattern strategies,
//! * [`prop_oneof!`] with weights,
//! * [`collection::vec`], [`arbitrary::any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! **not shrunk** — the panic message reports the raw failing case. That
//! trades debuggability for zero dependencies; swap in the real `proptest`
//! via `[workspace.dependencies]` once registry access exists.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                // Render the inputs before the body runs: the body may move
                // them, and on panic we still want to report the failing case.
                let case_desc = ::std::vec![
                    $(::std::format!("  {} = {:?}", stringify!($arg), $arg)),+
                ]
                .join("\n");
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} failed for {}:\n{case_desc}",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
