//! Failure and recovery, narrated: watch the naming service keep its
//! promise — clients never bind to a stale replica — through a full
//! crash/exclude/recover/include cycle (paper §2.3(3), §4.2).
//!
//! ```text
//! cargo run --example failover
//! ```

use groupview::{Counter, CounterOp, NodeId, ReplicationPolicy, System};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn st_of(sys: &System, uid: groupview::Uid) -> Vec<NodeId> {
    sys.naming()
        .state_db
        .entry(uid)
        .map(|e| e.stores)
        .unwrap_or_default()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::builder(3)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .build();
    let trio = [n(1), n(2), n(3)];

    let uid = sys.create_typed(Counter::new(100), &trio, &trio)?;
    println!("object {uid}: St = {:?}", st_of(&sys, uid.uid()));

    // 1. A commit happens while n3 is down: the write-back cannot reach its
    //    store, so commit processing EXCLUDES it from St.
    sys.sim().crash(n(3));
    println!("\nn3 crashes.");
    let client = sys.client(n(4));
    let counter = uid.open(&client);
    let action = client.begin_action();
    counter.activate(action, 2)?;
    counter.invoke(action, CounterOp::Add(23))?;
    client.commit(action)?;
    println!(
        "committed Add(23) while n3 was down -> St = {:?}",
        st_of(&sys, uid.uid())
    );
    assert_eq!(st_of(&sys, uid.uid()), vec![n(1), n(2)]);

    // 2. n3's stable store survived the crash — but it holds version 0.
    //    Because it is no longer in St, no client can be misdirected to it.
    println!("n3's disk still holds the OLD state, but St no longer lists n3.");

    // 3. n3 recovers: the recovery protocol refreshes its state from a
    //    current St member, then runs Include to rejoin.
    let report = sys.recovery().recover_node(n(3));
    println!(
        "\nn3 recovers: refreshed {:?}, re-included {:?}, server Insert ok for {:?}",
        report.refreshed, report.included, report.inserted
    );
    println!("St = {:?}", st_of(&sys, uid.uid()));
    assert_eq!(st_of(&sys, uid.uid()), vec![n(1), n(2), n(3)]);

    // 4. Proof: take the OTHER two stores down; a reader served only by n3
    //    still sees the latest committed state.
    sys.sim().crash(n(1));
    sys.sim().crash(n(2));
    sys.try_passivate(uid.uid()); // force the next client to reload from a store
    println!("\nn1 and n2 crash; only n3 is left.");
    let reader = sys.client(n(5));
    let counter = uid.open(&reader);
    let action = reader.begin_action();
    let group = counter.activate_read_only(action, 1)?;
    let value = counter.invoke(action, CounterOp::Get)?;
    println!("reader bound to {:?}, Get -> {value}", group.servers);
    assert_eq!(value, 123, "n3 must serve the refreshed state");
    reader.commit(action)?;

    println!("\nno stale state was ever observable — exactly the paper's guarantee.");
    Ok(())
}
