//! Named persistent objects: the full §2.2 lookup chain — a user-given
//! name resolves through the directory to a UID, the UID binds to replicas,
//! and everything (naming included) is transactional.
//!
//! Models a small warehouse: replicated KvMap shelves registered under
//! human-readable names, plus an account for the till. Creation-with-naming
//! is atomic, and renames roll back with their action.
//!
//! ```text
//! cargo run --example named_inventory
//! ```

use groupview::{Account, AccountOp, KvMap, KvOp, NodeId, ReplicationPolicy, System};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::builder(5)
        .nodes(7)
        .policy(ReplicationPolicy::Active)
        .build();
    let shelf_nodes = [n(1), n(2), n(3)];

    // Create named objects; name + databases + initial states commit as one
    // atomic action each.
    for name in ["shelves/tools", "shelves/paint"] {
        sys.create_typed_named(name, KvMap::new(), &shelf_nodes, &shelf_nodes)?;
        println!("created {name}");
    }
    sys.create_typed_named("till", Account::new(0), &shelf_nodes, &shelf_nodes)?;
    println!("created till");

    // A name collision aborts atomically — nothing is half-created.
    let err = sys
        .create_typed_named("till", Account::new(9), &shelf_nodes, &shelf_nodes)
        .unwrap_err();
    println!("duplicate 'till' refused: {err}");

    // Stock the shelves and take payment in one atomic action, all via
    // names (each lookup is a nested action of the sale). `open_by_name`
    // resolves, activates, and hands back a typed handle in one step.
    let clerk = sys.client(n(5));
    let sale = clerk.begin_action();
    let tools = clerk.open_by_name::<KvMap>(sale, "shelves/tools", 2)?;
    let till = clerk.open_by_name::<Account>(sale, "till", 2)?;
    tools.invoke(sale, KvOp::Put("hammer".into(), "3 in stock".into()))?;
    till.invoke(sale, AccountOp::Deposit(25))?;
    clerk.commit(sale)?;
    println!("sale committed: stocked hammers, took 25 into the till");

    // A crash between actions does not disturb names or state.
    sys.sim().crash(n(1));
    println!("n1 crashed");

    let audit = clerk.begin_action();
    let tools = clerk.open_by_name::<KvMap>(audit, "shelves/tools", 1)?;
    let till = clerk.open_by_name::<Account>(audit, "till", 1)?;
    let stock = tools.invoke(audit, KvOp::Get("hammer".into()))?;
    let balance = till.invoke(audit, AccountOp::Balance)?;
    clerk.commit(audit)?;
    println!(
        "after the crash: hammer -> {:?}, till -> {balance}",
        stock.value().unwrap_or("")
    );

    // Renames are transactional too: abort undoes them.
    let tx = sys.tx();
    let rename = tx.begin_top(n(0));
    let dir = sys.directory().local();
    let uid = dir.lookup(rename, "shelves/paint")?;
    dir.unbind_name(rename, "shelves/paint")?;
    dir.bind_name(rename, "shelves/decorating", uid)?;
    tx.abort(rename);
    println!(
        "rename aborted; directory still has: {:?}",
        sys.directory().local().names()
    );
    assert!(sys
        .directory()
        .local()
        .names()
        .contains(&"shelves/paint".to_string()));
    Ok(())
}
