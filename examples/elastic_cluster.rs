//! An elastic cluster, narrated: the world grows two fresh nodes under
//! committed traffic, drains an original server — every replica it hosts
//! moves in a transactional migration that repoints the directory and
//! copies the state atomically — and a stats-driven rebalancer then
//! spreads placement by measured per-object load. The naming service's
//! promise holds at every step: clients never bind to a stale or
//! half-moved replica.
//!
//! ```text
//! cargo run --example elastic_cluster
//! ```

use groupview::{
    Counter, CounterOp, Membership, NodeId, Phase, Rebalancer, ReplicationPolicy, System, Uid,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn st_of(sys: &System, uid: Uid) -> Vec<NodeId> {
    sys.naming()
        .state_db
        .entry(uid)
        .map(|e| e.stores)
        .unwrap_or_default()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Observed world, so the rebalancer's inputs (and the migration spans)
    // show up in the metrics snapshot at the end.
    let sys = System::builder(17)
        .nodes(7)
        .policy(ReplicationPolicy::Active)
        .observe()
        .build();
    let trio = [n(1), n(2), n(3)];

    // Six counters on the original trio, driven with skewed traffic so
    // object 0 is hot and object 5 is nearly cold — the load signal the
    // rebalancer will plan from.
    let uids: Vec<_> = (0..6)
        .map(|_| sys.create_typed(Counter::new(0), &trio, &trio))
        .collect::<Result<_, _>>()?;
    let client = sys.client(n(4));
    for round in 0..12usize {
        for (i, uid) in uids.iter().enumerate() {
            if i != 0 && !round.is_multiple_of(i + 1) {
                continue; // skew: lower-numbered objects run hotter
            }
            let counter = uid.open(&client);
            let action = client.begin_action();
            counter.activate(action, 2)?;
            counter.invoke(action, CounterOp::Add(1))?;
            client.commit(action)?;
            sys.try_passivate(uid.uid());
        }
    }
    println!("world: 7 nodes, servers {{1,2,3}}, 6 objects, skewed traffic");
    println!("object 0: St = {:?}", st_of(&sys, uids[0].uid()));

    // 1. Grow: two fresh nodes join and immediately become store targets.
    let membership = Membership::new(&sys);
    let a = membership.add_node();
    let b = membership.add_node();
    println!(
        "\nadded {a} ({}) and {b} ({})",
        membership.status(a),
        membership.status(b)
    );

    // 2. Drain: server 2 evacuates — each replica migrated to the least
    //    loaded eligible target under one transaction, then the node is
    //    decommissioned.
    let report = membership.drain_node(n(2), 4);
    println!("drain n2: {report}");
    println!("object 0: St = {:?}", st_of(&sys, uids[0].uid()));

    // 3. Rebalance: plan from measured per-object load (directory use
    //    counts × committed state bytes), then execute with bounded
    //    concurrency.
    let rebalancer = Rebalancer::default();
    let plan = rebalancer.plan(&membership);
    println!("\n{plan}");
    let report = rebalancer.execute(&membership, &plan);
    println!("{report}");

    // Every object still serves its committed state from the new layout.
    for (i, uid) in uids.iter().enumerate() {
        let counter = uid.open(&client);
        let action = client.begin_action();
        counter.activate_read_only(action, 1)?;
        let value = counter.invoke(action, CounterOp::Get)?;
        client.commit(action)?;
        assert!(value > 0, "object {i} lost history");
    }
    println!("\nall 6 objects serve their committed state from the new layout");

    // What the observability layer saw: per-node load attribution and the
    // migration span latencies.
    let snap = sys.metrics_snapshot();
    println!("\nper-node load:\n{}", snap.node_load_breakdown());
    let m = snap.phase(Phase::Migrate);
    println!(
        "migrations observed: {} (p50 {}µs, p95 {}µs)",
        m.count(),
        m.p50(),
        m.p95()
    );
    Ok(())
}
