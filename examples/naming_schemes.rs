//! The three database access schemes of §4.1, side by side.
//!
//! Repeats the same faulty workload under each scheme (Figures 6, 7, 8) and
//! prints what each client experienced: how often a dead server had to be
//! discovered "the hard way", what the binding actions cost, and what state
//! the Object Server database was left in.
//!
//! ```text
//! cargo run --example naming_schemes
//! ```

use groupview::workload::table::fmt_pct;
use groupview::{
    run_plan, BindingScheme, Counter, FaultAction, FaultScript, NodeId, ReplicationPolicy, System,
    WorkloadSpec,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn main() {
    println!("workload: 6 clients x 10 actions, 4 server nodes, n1 crashes early\n");
    println!(
        "{:<24} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "scheme", "availability", "dead probes", "msgs/action", "|Sv| after", "use lists"
    );

    for scheme in BindingScheme::ALL {
        let sys = System::builder(11)
            .nodes(10)
            .policy(ReplicationPolicy::Active)
            .scheme(scheme)
            .build();
        let servers: Vec<NodeId> = (1..=4).map(n).collect();
        let stores = [n(5), n(6)];
        let uids: Vec<_> = (0..6)
            .map(|_| {
                sys.create_typed(Counter::new(0), &servers, &stores)
                    .expect("create")
                    .uid()
            })
            .collect();

        // n1 crashes just after the workload starts and stays down.
        let script = FaultScript::new().at(2, FaultAction::CrashNode(n(1)));
        let spec = WorkloadSpec::new(uids.clone(), vec![n(7), n(8), n(9)])
            .clients(6)
            .actions_per_client(10)
            .ops_per_action(2)
            .replicas(2);
        let metrics = run_plan(&sys, &spec, &script.into()).metrics;

        let entry = sys.naming().server_db.entry(uids[0]).expect("entry");
        println!(
            "{:<24} {:>12} {:>12} {:>14.2} {:>12} {:>12}",
            scheme.to_string(),
            fmt_pct(metrics.availability()),
            metrics.probe_failures,
            metrics.action_messages.mean(),
            entry.servers.len(),
            if scheme.maintains_use_lists() {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!(
        "\nreading the table:\n\
         - standard (Fig 6): Sv never changes, so every bind re-probes the dead n1;\n\
         - independent (Fig 7): the first client to notice prunes n1 for everyone,\n\
           at the cost of use-list bookkeeping messages;\n\
         - nested-top-level (Fig 8): same hygiene, updates issued from within\n\
           the client action;\n\
         - cached-name-server (§5): server data in a non-atomic name server —\n\
           pruned once like Fig 7/8, but with no locks and the fewest messages."
    );
}
