//! Bank transfers: atomic actions across several replicated accounts, with
//! crash injection — the classic motivating workload for the
//! object-and-action model (paper §2.2).
//!
//! Runs a batch of transfers between replicated accounts while servers crash
//! and recover, then audits the books: despite failures and aborts, the
//! total balance is conserved, because every transfer is an atomic action.
//!
//! ```text
//! cargo run --example bank_transfers
//! ```

use groupview::{Account, AccountOp, NodeId, ReplicationPolicy, System, Uid};

const ACCOUNTS: usize = 4;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS: usize = 60;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::builder(7)
        .nodes(8)
        .policy(ReplicationPolicy::Active)
        .build();
    let nodes = sys.sim().nodes();
    let bank_nodes = &nodes[1..5]; // n1-n4 hold servers and stores
    let teller_node = nodes[6];

    // Open the accounts, replicated across three nodes each (staggered).
    let mut accounts: Vec<Uid> = Vec::new();
    for i in 0..ACCOUNTS {
        let replicas: Vec<NodeId> = (0..3)
            .map(|j| bank_nodes[(i + j) % bank_nodes.len()])
            .collect();
        let uid = sys.create_object(
            Box::new(Account::new(INITIAL_BALANCE)),
            &replicas,
            &replicas,
        )?;
        accounts.push(uid);
        println!("account {i}: {uid} on {replicas:?}");
    }

    let teller = sys.client(teller_node);
    let mut committed = 0u32;
    let mut aborted = 0u32;

    for round in 0..TRANSFERS {
        // Crash and recover bank nodes as the batch runs.
        match round {
            15 => {
                println!("-- crash {} --", bank_nodes[0]);
                sys.sim().crash(bank_nodes[0]);
            }
            30 => {
                println!("-- crash {} --", bank_nodes[2]);
                sys.sim().crash(bank_nodes[2]);
            }
            40 => {
                println!("-- recover {} and {} --", bank_nodes[0], bank_nodes[2]);
                sys.recovery().recover_node(bank_nodes[0]);
                sys.recovery().recover_node(bank_nodes[2]);
            }
            _ => {}
        }

        let from = accounts[round % ACCOUNTS];
        let to = accounts[(round + 1) % ACCOUNTS];
        let amount = 10 + (round as u64 % 90);

        // One transfer = one atomic action touching two replicated objects.
        let action = teller.begin();
        let outcome = (|| -> Result<bool, Box<dyn std::error::Error>> {
            let src = teller.activate(action, from, 2)?;
            let dst = teller.activate(action, to, 2)?;
            let withdrawal = teller.invoke(action, &src, &AccountOp::Withdraw(amount).encode())?;
            if AccountOp::decode_reply(&withdrawal) == Some(AccountOp::REFUSED) {
                return Ok(false); // insufficient funds: roll back
            }
            teller.invoke(action, &dst, &AccountOp::Deposit(amount).encode())?;
            Ok(true)
        })();
        match outcome {
            Ok(true) => match teller.commit(action) {
                Ok(()) => committed += 1,
                Err(_) => aborted += 1,
            },
            Ok(false) | Err(_) => {
                teller.abort(action);
                aborted += 1;
            }
        }
    }

    println!("\n{committed} transfers committed, {aborted} aborted");

    // Audit: read every account and check conservation of money.
    let auditor = sys.client(nodes[7]);
    let action = auditor.begin();
    let mut total = 0u64;
    for (i, &uid) in accounts.iter().enumerate() {
        let group = auditor.activate_read_only(action, uid, 1)?;
        let reply = auditor.invoke_read(action, &group, &AccountOp::Balance.encode())?;
        let balance = AccountOp::decode_reply(&reply).unwrap();
        println!("account {i}: balance {balance}");
        total += balance;
    }
    auditor.commit(action)?;

    let expected = INITIAL_BALANCE * ACCOUNTS as u64;
    println!("total = {total} (expected {expected})");
    assert_eq!(total, expected, "atomicity violated!");
    println!("books balance: every transfer was atomic despite {aborted} aborts");
    Ok(())
}
