//! Bank transfers: atomic actions across several replicated accounts, with
//! crash injection — the classic motivating workload for the
//! object-and-action model (paper §2.2).
//!
//! Runs a batch of transfers between replicated accounts while servers crash
//! and recover, then audits the books: despite failures and aborts, the
//! total balance is conserved, because every transfer is an atomic action.
//! Each transfer is a typed [`Tx`]: `begin` → `invoke` both legs → `commit`
//! drives one store two-phase commit over both accounts; any error path
//! just drops the builder, which replays the undo arena. The audit asserts
//! conservation and the process exits non-zero if the books don't balance,
//! so CI can run this example as a check.
//!
//! ```text
//! cargo run --example bank_transfers
//! ```

use groupview::{Account, AccountOp, Handle, NodeId, ReplicationPolicy, System, Tx, TypedUid};

const ACCOUNTS: usize = 4;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS: usize = 60;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::builder(7)
        .nodes(8)
        .policy(ReplicationPolicy::Active)
        .build();
    let nodes = sys.sim().nodes();
    let bank_nodes = &nodes[1..5]; // n1-n4 hold servers and stores
    let teller_node = nodes[6];

    // Open the accounts, replicated across three nodes each (staggered).
    let mut accounts: Vec<TypedUid<Account>> = Vec::new();
    for i in 0..ACCOUNTS {
        let replicas: Vec<NodeId> = (0..3)
            .map(|j| bank_nodes[(i + j) % bank_nodes.len()])
            .collect();
        let uid = sys.create_typed(Account::new(INITIAL_BALANCE), &replicas, &replicas)?;
        accounts.push(uid);
        println!("account {i}: {uid} on {replicas:?}");
    }

    let teller = sys.client(teller_node);
    let tills: Vec<Handle<Account>> = accounts.iter().map(|uid| uid.open(&teller)).collect();
    let mut committed = 0u32;
    let mut aborted = 0u32;

    for round in 0..TRANSFERS {
        // Crash and recover bank nodes as the batch runs.
        match round {
            15 => {
                println!("-- crash {} --", bank_nodes[0]);
                sys.sim().crash(bank_nodes[0]);
            }
            30 => {
                println!("-- crash {} --", bank_nodes[2]);
                sys.sim().crash(bank_nodes[2]);
            }
            40 => {
                println!("-- recover {} and {} --", bank_nodes[0], bank_nodes[2]);
                sys.recovery().recover_node(bank_nodes[0]);
                sys.recovery().recover_node(bank_nodes[2]);
            }
            _ => {}
        }

        let from = &tills[round % ACCOUNTS];
        let to = &tills[(round + 1) % ACCOUNTS];
        let amount = 10 + (round as u64 % 90);

        // One transfer = one typed transaction touching two replicated
        // objects; dropping `tx` on any early exit aborts it (the undo
        // arena replays in reverse), so no error path can leak a half-done
        // transfer.
        let mut tx: Tx = teller.begin().with_replicas(2);
        let outcome = (|| -> Result<bool, Box<dyn std::error::Error>> {
            if tx.invoke(from, AccountOp::Withdraw(amount))? == AccountOp::REFUSED {
                return Ok(false); // insufficient funds: roll back
            }
            tx.invoke(to, AccountOp::Deposit(amount))?;
            Ok(true)
        })();
        match outcome {
            Ok(true) => match tx.commit() {
                Ok(()) => committed += 1,
                Err(_) => aborted += 1,
            },
            Ok(false) | Err(_) => {
                aborted += 1; // tx drops here, aborting the action
            }
        }
    }

    println!("\n{committed} transfers committed, {aborted} aborted");

    // Audit: read every account and check conservation of money.
    let auditor = sys.client(nodes[7]);
    let action = auditor.begin_action();
    let mut total = 0u64;
    for (i, uid) in accounts.iter().enumerate() {
        let account = uid.open(&auditor);
        account.activate_read_only(action, 1)?;
        let balance = account.invoke(action, AccountOp::Balance)?;
        println!("account {i}: balance {balance}");
        total += balance;
    }
    auditor.commit(action)?;

    let expected = INITIAL_BALANCE * ACCOUNTS as u64;
    println!("total = {total} (expected {expected})");
    if total != expected {
        eprintln!("AUDIT FAILED: atomicity violated — money was created or destroyed");
        std::process::exit(1);
    }
    println!("books balance: every transfer was atomic despite {aborted} aborts");
    Ok(())
}
