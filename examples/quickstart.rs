//! Quickstart: create a replicated persistent object, mutate it inside an
//! atomic action, crash a replica, and show the object stays available with
//! the committed state.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use groupview::{Counter, CounterOp, ReplicationPolicy, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A five-node world. Node n0 hosts the naming service (the paper's
    // "group view database"); n1-n3 can run servers and hold object stores;
    // n4 runs the client application.
    let sys = System::builder(42)
        .nodes(5)
        .policy(ReplicationPolicy::Active)
        .build();
    let nodes = sys.sim().nodes();
    let (servers, client_node) = (&nodes[1..4], nodes[4]);

    // Create a persistent counter: Sv = St = {n1, n2, n3}. The typed uid
    // remembers the class, so the handle below needs no turbofish.
    let uid = sys.create_typed(Counter::new(0), servers, servers)?;
    println!("created {uid}: Sv = St = {{n1, n2, n3}}");

    // First atomic action: activate two replicas and add 10. Typed handles
    // encode operations and decode replies for us.
    let client = sys.client(client_node);
    let counter = uid.open(&client);
    let action = client.begin_action();
    let group = counter.activate(action, 2)?;
    println!("bound to servers {:?} (|Sv'| = 2)", group.servers);
    let value = counter.invoke(action, CounterOp::Add(10))?;
    println!("Add(10) -> {value}");
    client.commit(action)?;
    println!("committed; every store in St now holds version 1");

    // Crash one of the bound replicas. Active replication masks it.
    sys.sim().crash(group.servers[0]);
    println!(
        "crashed {} — the binding service routes around it",
        group.servers[0]
    );

    let action = client.begin_action();
    let group = counter.activate(action, 2)?;
    // `Get` is read-only, so the handle takes a read lock automatically.
    let value = counter.invoke(action, CounterOp::Get)?;
    println!("after the crash: bound {:?}, Get -> {value}", group.servers);
    client.commit(action)?;

    // Batched invocation: three ops in one wire frame and one replica
    // round; replies are index-aligned with the ops. The one write op
    // makes the whole batch take the write lock.
    let action = client.begin_action();
    counter.activate(action, 2)?;
    let replies =
        counter.invoke_batch(action, &[CounterOp::Get, CounterOp::Add(5), CounterOp::Get])?;
    println!("batch [Get, Add(5), Get] -> {replies:?}");
    client.commit(action)?;

    // The simulated run is deterministic: same seed, same story.
    println!(
        "virtual time {} / {} messages delivered",
        sys.sim().now(),
        sys.sim().counters().delivered
    );
    Ok(())
}
