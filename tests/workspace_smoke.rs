//! Workspace smoke test: the root-crate quickstart, end to end.
//!
//! This is the façade's doc example as a plain integration test, so a
//! broken workspace wiring (manifests, re-exports, cross-crate `From`
//! chains) fails here with a readable assertion rather than a doctest
//! harness error.

use groupview::{Counter, CounterOp, ReplicationPolicy, System};

#[test]
fn quickstart_runs_end_to_end() -> Result<(), Box<dyn std::error::Error>> {
    // A five-node world; node 0 hosts the naming service.
    let sys = System::builder(42)
        .nodes(5)
        .policy(ReplicationPolicy::Active)
        .build();
    let nodes = sys.sim().nodes();

    // A counter stored on three nodes, servable by the same three.
    let uid = sys.create_typed(Counter::new(0), &nodes[1..4], &nodes[1..4])?;

    // A client runs an atomic action against two active replicas, through
    // the typed handle surface.
    let client = sys.client(nodes[4]);
    let counter = uid.open(&client);
    let action = client.begin_action();
    counter.activate(action, 2)?;
    assert_eq!(counter.invoke(action, CounterOp::Add(10))?, 10);
    client.commit(action)?;

    // A crash of one replica is masked; the state is safe on every store.
    sys.sim().crash(nodes[1]);
    let action = client.begin_action();
    counter.activate(action, 2)?;
    assert_eq!(counter.invoke(action, CounterOp::Get)?, 10);
    client.commit(action)?;
    Ok(())
}
