//! Property tests for the paper's core invariants (DESIGN.md §6):
//!
//! * **I1** — every store listed in `St(A)` holds a byte-identical copy of
//!   `A`'s latest committed state;
//! * **I2** — committed effects are never lost while at least one store in
//!   `St(A)` survives;
//! * **I3** — a client can never read stale state through a binding;
//! * **I4** — use lists are quiescent once all clients finished;
//! * **I5** — the lock table is empty after all actions terminate.
//!
//! A random schedule of writes, reads, crashes, recoveries, and cleanup
//! sweeps is run against a model (the expected committed value of each
//! counter); the invariants are checked after every step and at the end.

use groupview::scenario::{
    check_counter_states, check_quiescent_invariants, ModelKind, ObjectModel,
};
use groupview::{Counter, CounterOp, NodeId, ReplicationPolicy, System, Uid};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    /// Run a client action adding 1 to the object (may abort).
    Write(usize),
    /// Run a read-only client action and check the value against the model.
    Read(usize),
    /// Crash one of the server/store nodes.
    Crash(usize),
    /// Recover one of the server/store nodes (full recovery protocol).
    Recover(usize),
    /// Try to passivate the object.
    Passivate(usize),
    /// Partition the client node away from one server/store node.
    Partition(usize),
    /// Heal all partitions and run store recovery everywhere.
    HealAll,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0usize..2).prop_map(Step::Write),
        3 => (0usize..2).prop_map(Step::Read),
        2 => (0usize..3).prop_map(Step::Crash),
        2 => (0usize..3).prop_map(Step::Recover),
        1 => (0usize..2).prop_map(Step::Passivate),
        2 => (0usize..3).prop_map(Step::Partition),
        2 => Just(Step::HealAll),
    ]
}

struct World {
    sys: System,
    objects: Vec<Uid>,
    /// Model: expected committed value per object.
    model: Vec<i64>,
    trio: [NodeId; 3],
    client_node: NodeId,
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build(seed: u64, policy: ReplicationPolicy) -> World {
    let sys = System::builder(seed).nodes(6).policy(policy).build();
    let trio = [n(1), n(2), n(3)];
    let objects = (0..2)
        .map(|_| {
            sys.create_object(Box::new(Counter::new(0)), &trio, &trio)
                .expect("create")
        })
        .collect();
    World {
        sys,
        objects,
        model: vec![0, 0],
        trio,
        client_node: n(4),
    }
}

impl World {
    fn apply(&mut self, step: &Step) {
        match *step {
            Step::Write(o) => {
                let uid = self.objects[o];
                let client = self.sys.client(self.client_node);
                let counter = client.open::<Counter>(uid);
                let action = client.begin_action();
                let committed = (|| {
                    counter.activate(action, 2).ok()?;
                    counter.invoke(action, CounterOp::Add(1)).ok()?;
                    client.commit(action).ok()
                })();
                match committed {
                    Some(()) => self.model[o] += 1,
                    None => client.abort(action),
                }
            }
            Step::Read(o) => {
                let uid = self.objects[o];
                let client = self.sys.client(self.client_node);
                let counter = client.open::<Counter>(uid);
                let action = client.begin_action();
                let observed = (|| {
                    counter.activate_read_only(action, 1).ok()?;
                    let value = counter.invoke(action, CounterOp::Get).ok()?;
                    client.commit(action).ok()?;
                    Some(value)
                })();
                if let Some(value) = observed {
                    // I3: a successful read can never be stale.
                    assert_eq!(
                        value, self.model[o],
                        "stale read through a valid binding (object {o})"
                    );
                } else {
                    client.abort(action);
                }
            }
            Step::Crash(i) => self.sys.sim().crash(self.trio[i]),
            Step::Recover(i) => {
                self.sys.recovery().recover_node(self.trio[i]);
            }
            Step::Passivate(o) => {
                let _ = self.sys.try_passivate(self.objects[o]);
            }
            Step::Partition(i) => {
                self.sys.sim().partition(self.client_node, self.trio[i]);
            }
            Step::HealAll => {
                self.sys.sim().heal_all();
                for i in 0..3 {
                    if self.sys.sim().is_up(self.trio[i]) {
                        self.sys.recovery().recover_store(self.trio[i]);
                    }
                }
            }
        }
    }

    /// I1 among *listed and reachable* stores, checked continuously.
    fn check_consistency(&self) {
        for (o, &uid) in self.objects.iter().enumerate() {
            let Some(entry) = self.sys.naming().state_db.entry(uid) else {
                continue;
            };
            let mut states = Vec::new();
            for &node in &entry.stores {
                if self.sys.sim().is_up(node) {
                    if let Ok(state) = self.sys.stores().read_local(node, uid) {
                        states.push((node, state));
                    }
                }
            }
            for window in states.windows(2) {
                assert_eq!(
                    window[0].1, window[1].1,
                    "I1 violated for object {o}: stores {} and {} disagree",
                    window[0].0, window[1].0
                );
            }
            // The committed value in the stores matches the model.
            if let Some((_, state)) = states.first() {
                assert_eq!(
                    Counter::decode(&state.data).value(),
                    self.model[o],
                    "I2 violated for object {o}: committed value lost"
                );
            }
        }
    }

    fn finish(&mut self) {
        // Bring everything back, then let recovery reach a joint fixpoint
        // (one node's refresh may need another node to be up first).
        self.sys.sim().heal_all();
        for i in 0..3 {
            self.sys.sim().recover(self.trio[i]);
        }
        let mut guard = 0;
        loop {
            let mut all_done = true;
            for i in 0..3 {
                let mut report = self.sys.recovery().recover_store(self.trio[i]);
                report.merge(self.sys.recovery().recover_server(self.trio[i]));
                if !report.fully_recovered() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            guard += 1;
            assert!(guard < 50, "recovery never reached a fixpoint");
        }
        // I5 (no leaked locks), I4 (quiescent use lists), St restored to
        // full strength, and I1 (byte-identical stores): the scenario
        // oracle's quiescent-invariant check, which generalizes what this
        // test used to hard-code.
        let objects: Vec<ObjectModel> = self
            .objects
            .iter()
            .map(|&uid| ObjectModel {
                uid,
                kind: ModelKind::COUNTER,
                full_strength: 3,
            })
            .collect();
        let violations = check_quiescent_invariants(&self.sys, &objects);
        assert!(violations.is_empty(), "invariants violated: {violations:?}");
        // I2 after recovery: every store holds the model's committed value.
        let expected: Vec<(Uid, i64)> = self
            .objects
            .iter()
            .zip(&self.model)
            .map(|(&uid, &v)| (uid, v))
            .collect();
        let violations = check_counter_states(&self.sys, &expected);
        assert!(violations.is_empty(), "I2 violated: {violations:?}");
        // Final read-back through the public API (I3 again).
        for (o, &uid) in self.objects.iter().enumerate() {
            let client = self.sys.client(n(5));
            let counter = client.open::<Counter>(uid);
            let action = client.begin_action();
            counter
                .activate_read_only(action, 1)
                .expect("activate after full recovery");
            let value = counter
                .invoke(action, CounterOp::Get)
                .expect("read after full recovery");
            client.commit(action).expect("commit");
            assert_eq!(value, self.model[o], "object {o}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn invariants_hold_under_random_schedules_active(
        seed in 0u64..10_000,
        steps in prop::collection::vec(step_strategy(), 1..40),
    ) {
        let mut world = build(seed, ReplicationPolicy::Active);
        for step in &steps {
            world.apply(step);
            world.check_consistency();
        }
        world.finish();
    }

    #[test]
    fn invariants_hold_under_random_schedules_single_copy(
        seed in 0u64..10_000,
        steps in prop::collection::vec(step_strategy(), 1..40),
    ) {
        let mut world = build(seed, ReplicationPolicy::SingleCopyPassive);
        for step in &steps {
            world.apply(step);
            world.check_consistency();
        }
        world.finish();
    }

    #[test]
    fn invariants_hold_under_random_schedules_cohort(
        seed in 0u64..10_000,
        steps in prop::collection::vec(step_strategy(), 1..30),
    ) {
        let mut world = build(seed, ReplicationPolicy::CoordinatorCohort);
        for step in &steps {
            world.apply(step);
            world.check_consistency();
        }
        world.finish();
    }
}
