//! Network partitions: the paper's §2.3(2)(i) notes active replication
//! keeps an object available "in the absence of network partitions
//! preventing communication". These tests pin down what partitions do to
//! the binding machinery — and that consistency survives them.

use groupview::{Counter, CounterOp, NodeId, ReplicationPolicy, System};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build(seed: u64) -> (System, groupview::Uid) {
    let sys = System::builder(seed)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .build();
    let uid = sys
        .create_object(
            Box::new(Counter::new(0)),
            &[n(1), n(2), n(3)],
            &[n(1), n(2), n(3)],
        )
        .expect("create");
    (sys, uid)
}

#[test]
fn client_partitioned_from_naming_service_cannot_bind() {
    let (sys, uid) = build(201);
    let client = sys.client(n(4));
    sys.sim().partition(n(4), n(0));
    let action = client.begin_action();
    let err = client
        .activate(action, uid, 2)
        .expect_err("naming unreachable");
    assert!(matches!(err, groupview::ActivateError::Bind(_)));
    client.abort(action);
    // Healing restores service.
    sys.sim().heal(n(4), n(0));
    let counter = client.open::<Counter>(uid);
    let action = client.begin_action();
    counter.activate(action, 2).expect("bind after heal");
    counter.invoke(action, CounterOp::Add(1)).expect("invoke");
    client.commit(action).expect("commit");
}

#[test]
fn client_partitioned_from_a_server_binds_elsewhere() {
    let (sys, uid) = build(202);
    let client = sys.client(n(4));
    let counter = client.open::<Counter>(uid);
    // The client cannot reach n1, but n2/n3 still serve it.
    sys.sim().partition(n(4), n(1));
    let action = client.begin_action();
    let group = counter.activate(action, 2).expect("bind around partition");
    assert!(
        !group.servers.contains(&n(1)),
        "partitioned server probed dead"
    );
    assert_eq!(group.servers.len(), 2);
    counter.invoke(action, CounterOp::Add(5)).expect("invoke");
    client.commit(action).expect("commit");
}

#[test]
fn store_partitioned_at_commit_gets_excluded_then_reincluded() {
    let (sys, uid) = build(203);
    let client = sys.client(n(4));
    let counter = client.open::<Counter>(uid);
    let action = client.begin_action();
    counter.activate(action, 2).expect("activate");
    counter.invoke(action, CounterOp::Add(9)).expect("invoke");
    // The commit coordinator (the client's node) loses contact with n3.
    sys.sim().partition(n(4), n(3));
    client.commit(action).expect("commit without n3");
    let st = sys.naming().state_db.entry(uid).expect("entry");
    assert_eq!(
        st.stores,
        vec![n(1), n(2)],
        "unreachable store excluded at commit"
    );
    // n3's store is now stale; after the partition heals, the recovery
    // protocol refreshes and re-includes it (the node never crashed, but
    // the same §4.2 routine applies).
    sys.sim().heal(n(4), n(3));
    let report = sys.recovery().recover_store(n(3));
    assert_eq!(report.included, vec![uid]);
    let st = sys.naming().state_db.entry(uid).expect("entry");
    assert_eq!(st.stores.len(), 3);
    let state = sys.stores().read_local(n(3), uid).expect("state");
    assert_eq!(
        Counter::decode(&state.data).value(),
        9,
        "refreshed to latest"
    );
}

#[test]
fn partition_between_groups_blocks_cross_traffic_only() {
    let (sys, uid) = build(204);
    // Split: {naming, servers} | {client node 4}; client 5 unaffected.
    sys.sim()
        .partition_groups(&[n(0), n(1), n(2), n(3)], &[n(4)]);
    let cut_off = sys.client(n(4));
    let action = cut_off.begin_action();
    assert!(cut_off.activate(action, uid, 2).is_err());
    cut_off.abort(action);

    let fine = sys.client(n(5));
    let fine_counter = fine.open::<Counter>(uid);
    let action = fine.begin_action();
    fine_counter.activate(action, 2).expect("unaffected side");
    fine_counter
        .invoke(action, CounterOp::Add(2))
        .expect("invoke");
    fine.commit(action).expect("commit");

    sys.sim().heal_all();
    let counter = cut_off.open::<Counter>(uid);
    let action = cut_off.begin_action();
    counter.activate(action, 2).expect("after heal");
    assert_eq!(counter.invoke(action, CounterOp::Get).expect("read"), 2);
    cut_off.commit(action).expect("commit");
}

#[test]
fn no_stale_reads_across_partition_heal_cycles() {
    let (sys, uid) = build(205);
    let mut expected = 0i64;
    for round in 0..8u32 {
        // Rotate a partition between the client node and one store node.
        let victim = n(1 + (round % 3));
        sys.sim().partition(n(4), victim);
        let client = sys.client(n(4));
        let counter = client.open::<Counter>(uid);
        let action = client.begin_action();
        let committed = (|| {
            counter.activate(action, 2).ok()?;
            counter.invoke(action, CounterOp::Add(1)).ok()?;
            client.commit(action).ok()
        })();
        match committed {
            Some(()) => expected += 1,
            None => client.abort(action),
        }
        sys.sim().heal_all();
        // Heal-time recovery for whatever got excluded.
        for store in [n(1), n(2), n(3)] {
            sys.recovery().recover_store(store);
        }
        // Every listed store must hold the latest committed value.
        let st = sys.naming().state_db.entry(uid).expect("entry");
        for &node in &st.stores {
            let state = sys.stores().read_local(node, uid).expect("state");
            assert_eq!(
                Counter::decode(&state.data).value(),
                expected,
                "round {round}: stale store {node} listed in St"
            );
        }
    }
    assert!(expected > 0, "some rounds must commit");
}

#[test]
fn cohort_partitioned_from_coordinator_is_expelled_not_stale() {
    // Coordinator-cohort: a cohort that cannot receive checkpoints must not
    // survive in the activation set with stale state.
    let sys = System::builder(206)
        .nodes(6)
        .policy(ReplicationPolicy::CoordinatorCohort)
        .build();
    let uid = sys
        .create_object(
            Box::new(Counter::new(0)),
            &[n(1), n(2), n(3)],
            &[n(1), n(2), n(3)],
        )
        .expect("create");
    let client = sys.client(n(4));
    let counter = client.open::<Counter>(uid);
    // Action 1 activates all three; coordinator is n1.
    let action = client.begin_action();
    let group = counter.activate(action, 3).expect("activate");
    assert_eq!(group.servers, vec![n(1), n(2), n(3)]);
    // n3 gets partitioned from the coordinator: it misses the checkpoint.
    sys.sim().partition(n(1), n(3));
    counter.invoke(action, CounterOp::Add(5)).expect("invoke");
    client.commit(action).expect("commit");
    // n3 was expelled from the activation (unloaded); a new action joins
    // only the fresh members and never sees stale state through n3.
    sys.sim().heal_all();
    let action = client.begin_action();
    counter.activate(action, 3).expect("activate again");
    assert_eq!(
        counter.invoke(action, CounterOp::Get).expect("read"),
        5,
        "no stale cohort"
    );
    client.commit(action).expect("commit");
}
