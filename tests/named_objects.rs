//! The name directory end to end: names → UIDs → bound replicas (§2.2's
//! full lookup chain), including atomicity of creation-with-naming.

use groupview::{Account, AccountOp, DbError, KvMap, KvOp, NodeId, ReplicationPolicy, System};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build() -> System {
    System::builder(401)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .build()
}

#[test]
fn create_named_lookup_invoke_roundtrip() {
    let sys = build();
    let uid = sys
        .create_named_object(
            "accounts/alice",
            Box::new(Account::new(500)),
            &[n(1), n(2)],
            &[n(1), n(2)],
        )
        .expect("create named");

    let client = sys.client(n(4));
    let action = client.begin();
    let group = client
        .activate_by_name(action, "accounts/alice", 2)
        .expect("activate by name");
    assert_eq!(group.uid, uid);
    let reply = client
        .invoke(action, &group, &AccountOp::Withdraw(100).encode())
        .expect("withdraw");
    assert_eq!(AccountOp::decode_reply(&reply), Some(400));
    client.commit(action).expect("commit");
}

#[test]
fn unknown_names_fail_cleanly() {
    let sys = build();
    let client = sys.client(n(4));
    let action = client.begin();
    let err = client
        .activate_by_name(action, "no/such/object", 1)
        .expect_err("unknown name");
    assert!(matches!(
        err,
        groupview::ActivateError::Db(DbError::NotFound(_))
    ));
    client.abort(action);
}

#[test]
fn name_collisions_abort_creation_atomically() {
    let sys = build();
    sys.create_named_object("kv/config", Box::new(KvMap::new()), &[n(1)], &[n(1)])
        .expect("first");
    let objects_before = sys.naming().server_db.uids().len();
    let err = sys
        .create_named_object("kv/config", Box::new(KvMap::new()), &[n(2)], &[n(2)])
        .expect_err("name taken");
    assert!(matches!(err, DbError::AlreadyExists(_)));
    // The failed creation left nothing behind: no object entries, no name.
    assert_eq!(sys.naming().server_db.uids().len(), objects_before);
    assert_eq!(
        sys.directory().local().names(),
        vec!["kv/config".to_string()]
    );
}

#[test]
fn names_survive_naming_node_crash_and_recovery() {
    let sys = build();
    sys.create_named_object(
        "kv/session",
        Box::new(KvMap::new()),
        &[n(1), n(2)],
        &[n(1), n(2)],
    )
    .expect("create");
    // Write through the name.
    let client = sys.client(n(4));
    let action = client.begin();
    let group = client
        .activate_by_name(action, "kv/session", 2)
        .expect("activate");
    client
        .invoke(
            action,
            &group,
            &KvOp::Put("user".into(), "mcl".into()).encode(),
        )
        .expect("put");
    client.commit(action).expect("commit");

    // The naming node crashes: lookups fail while it is down...
    sys.sim().crash(n(0));
    let action = client.begin();
    assert!(client.activate_by_name(action, "kv/session", 2).is_err());
    client.abort(action);

    // ...and work again after recovery (directory state is in the service's
    // persistent object, which our simulation keeps with the service).
    sys.recovery().recover_node(n(0));
    let action = client.begin();
    let group = client
        .activate_by_name(action, "kv/session", 2)
        .expect("activate after recovery");
    let reply = client
        .invoke_read(action, &group, &KvOp::Get("user".into()).encode())
        .expect("get");
    assert_eq!(reply, b"mcl");
    client.commit(action).expect("commit");
}

#[test]
fn directory_updates_are_transactional_with_the_client_action() {
    let sys = build();
    let uid = sys
        .create_named_object("tmp/a", Box::new(KvMap::new()), &[n(1)], &[n(1)])
        .expect("create");
    // Rename within an action, then abort: the rename is undone.
    let tx = sys.tx();
    let action = tx.begin_top(n(0));
    let dir = sys.directory().local();
    assert!(dir.unbind_name(action, "tmp/a").unwrap());
    dir.bind_name(action, "tmp/b", uid).unwrap();
    tx.abort(action);
    assert_eq!(dir.names(), vec!["tmp/a".to_string()]);
    // And committed when the action commits.
    let action = tx.begin_top(n(0));
    assert!(dir.unbind_name(action, "tmp/a").unwrap());
    dir.bind_name(action, "tmp/b", uid).unwrap();
    tx.commit(action).unwrap();
    assert_eq!(dir.names(), vec!["tmp/b".to_string()]);
}
