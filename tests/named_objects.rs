//! The name directory end to end: names → UIDs → bound replicas (§2.2's
//! full lookup chain), including atomicity of creation-with-naming.

use groupview::{
    Account, AccountOp, DbError, KvMap, KvOp, KvReply, NodeId, ReplicationPolicy, System,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build() -> System {
    System::builder(401)
        .nodes(6)
        .policy(ReplicationPolicy::Active)
        .build()
}

#[test]
fn create_named_lookup_invoke_roundtrip() {
    let sys = build();
    let uid = sys
        .create_typed_named(
            "accounts/alice",
            Account::new(500),
            &[n(1), n(2)],
            &[n(1), n(2)],
        )
        .expect("create named");

    let client = sys.client(n(4));
    let action = client.begin_action();
    let account = client
        .open_by_name::<Account>(action, "accounts/alice", 2)
        .expect("activate by name");
    assert_eq!(account.uid(), uid.uid());
    let balance = account
        .invoke(action, AccountOp::Withdraw(100))
        .expect("withdraw");
    assert_eq!(balance, 400);
    client.commit(action).expect("commit");
}

#[test]
fn unknown_names_fail_cleanly() {
    let sys = build();
    let client = sys.client(n(4));
    let action = client.begin_action();
    let err = client
        .activate_by_name(action, "no/such/object", 1)
        .expect_err("unknown name");
    assert!(matches!(
        err,
        groupview::ActivateError::Db(DbError::NotFound(_))
    ));
    client.abort(action);
}

#[test]
fn name_collisions_abort_creation_atomically() {
    let sys = build();
    sys.create_typed_named("kv/config", KvMap::new(), &[n(1)], &[n(1)])
        .expect("first");
    let objects_before = sys.naming().server_db.uids().len();
    let err = sys
        .create_typed_named("kv/config", KvMap::new(), &[n(2)], &[n(2)])
        .expect_err("name taken");
    assert!(matches!(err, DbError::AlreadyExists(_)));
    // The failed creation left nothing behind: no object entries, no name.
    assert_eq!(sys.naming().server_db.uids().len(), objects_before);
    assert_eq!(
        sys.directory().local().names(),
        vec!["kv/config".to_string()]
    );
}

#[test]
fn names_survive_naming_node_crash_and_recovery() {
    let sys = build();
    sys.create_typed_named("kv/session", KvMap::new(), &[n(1), n(2)], &[n(1), n(2)])
        .expect("create");
    // Write through the name.
    let client = sys.client(n(4));
    let action = client.begin_action();
    let session = client
        .open_by_name::<KvMap>(action, "kv/session", 2)
        .expect("activate");
    session
        .invoke(action, KvOp::Put("user".into(), "mcl".into()))
        .expect("put");
    client.commit(action).expect("commit");

    // The naming node crashes: lookups fail while it is down...
    sys.sim().crash(n(0));
    let action = client.begin_action();
    assert!(client.activate_by_name(action, "kv/session", 2).is_err());
    client.abort(action);

    // ...and work again after recovery (directory state is in the service's
    // persistent object, which our simulation keeps with the service).
    sys.recovery().recover_node(n(0));
    let action = client.begin_action();
    let session = client
        .open_by_name::<KvMap>(action, "kv/session", 2)
        .expect("activate after recovery");
    let value = session
        .invoke(action, KvOp::Get("user".into()))
        .expect("get");
    assert_eq!(value, KvReply::Value("mcl".into()));
    client.commit(action).expect("commit");
}

#[test]
fn directory_updates_are_transactional_with_the_client_action() {
    let sys = build();
    let uid = sys
        .create_typed_named("tmp/a", KvMap::new(), &[n(1)], &[n(1)])
        .expect("create")
        .uid();
    // Rename within an action, then abort: the rename is undone.
    let tx = sys.tx();
    let action = tx.begin_top(n(0));
    let dir = sys.directory().local();
    assert!(dir.unbind_name(action, "tmp/a").unwrap());
    dir.bind_name(action, "tmp/b", uid).unwrap();
    tx.abort(action);
    assert_eq!(dir.names(), vec!["tmp/a".to_string()]);
    // And committed when the action commits.
    let action = tx.begin_top(n(0));
    assert!(dir.unbind_name(action, "tmp/a").unwrap());
    dir.bind_name(action, "tmp/b", uid).unwrap();
    tx.commit(action).unwrap();
    assert_eq!(dir.names(), vec!["tmp/b".to_string()]);
}
