//! Dynamic changes to the degree of replication (§2.3(1)): "a new replica
//! for an object can be added to the system … it is important to ensure
//! that such changes are reflected in the naming and binding service
//! without causing inconsistencies to current users of the object."

use groupview::{
    BindingScheme, Counter, CounterOp, DbError, NodeId, ReplicationPolicy, System, Uid,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build(scheme: BindingScheme) -> (System, Uid) {
    let sys = System::builder(301)
        .nodes(8)
        .scheme(scheme)
        .policy(ReplicationPolicy::Active)
        .build();
    let uid = sys
        .create_object(Box::new(Counter::new(0)), &[n(1), n(2)], &[n(1), n(2)])
        .expect("create");
    (sys, uid)
}

/// Grows `Sv` by one server node through the application-level `Insert`.
fn add_server(sys: &System, uid: Uid, host: NodeId) -> Result<(), DbError> {
    let action = sys.tx().begin_top(sys.naming().node());
    match sys.naming().server_db.insert(action, uid, host) {
        Ok(_) => {
            sys.tx().commit(action).map_err(DbError::Tx)?;
            Ok(())
        }
        Err(e) => {
            sys.tx().abort(action);
            Err(e)
        }
    }
}

/// Grows `St` by one store node: write the current state there, then
/// `Include` it — the §4.2 recovery routine doubles as degree growth.
fn add_store(sys: &System, uid: Uid, host: NodeId) -> Result<(), DbError> {
    sys.stores().add_store(host);
    let action = sys.tx().begin_top(sys.naming().node());
    let result = (|| {
        let view = sys.naming().state_db.get_view(action, uid)?;
        let src = view.stores[0];
        let state = sys
            .stores()
            .read_remote(sys.naming().node(), src, uid)
            .map_err(|_| DbError::NotFound(uid))?;
        sys.stores()
            .write_remote(sys.naming().node(), host, uid, state)
            .map_err(|_| DbError::NotFound(uid))?;
        sys.naming().state_db.include(action, uid, host)?;
        Ok(())
    })();
    match result {
        Ok(()) => {
            sys.tx().commit(action).map_err(DbError::Tx)?;
            Ok(())
        }
        Err(e) => {
            sys.tx().abort(action);
            Err(e)
        }
    }
}

#[test]
fn growing_sv_makes_the_new_server_bindable() {
    let (sys, uid) = build(BindingScheme::Standard);
    add_server(&sys, uid, n(3)).expect("insert n3");
    assert_eq!(
        sys.naming().server_db.entry(uid).unwrap().servers,
        vec![n(1), n(2), n(3)]
    );
    // Kill one original server; the grown set still offers two (n2, n3) —
    // the new server loads its state from the surviving store n2.
    sys.sim().crash(n(1));
    let client = sys.client(n(5));
    let counter = client.open::<Counter>(uid);
    let action = client.begin_action();
    let group = counter.activate(action, 2).expect("bind the new server");
    assert_eq!(group.servers, vec![n(2), n(3)]);
    assert_eq!(
        counter
            .invoke(action, CounterOp::Get)
            .expect("read via the grown set"),
        0
    );
    client.commit(action).expect("commit");
}

#[test]
fn growing_st_adds_a_durable_copy() {
    let (sys, uid) = build(BindingScheme::Standard);
    // Commit a value first.
    let client = sys.client(n(5));
    let counter = client.open::<Counter>(uid);
    let action = client.begin_action();
    counter.activate(action, 2).expect("activate");
    counter.invoke(action, CounterOp::Add(42)).expect("invoke");
    client.commit(action).expect("commit");
    assert!(sys.try_passivate(uid));

    add_store(&sys, uid, n(4)).expect("include n4");
    assert_eq!(sys.naming().state_db.entry(uid).unwrap().len(), 3);
    let copy = sys.stores().read_local(n(4), uid).expect("copied state");
    assert_eq!(Counter::decode(&copy.data).value(), 42);

    // Grow Sv too, then lose both original nodes: the new server (n3) must
    // revive the object from the new store's (n4's) copy alone.
    add_server(&sys, uid, n(3)).expect("insert n3");
    sys.sim().crash(n(1));
    sys.sim().crash(n(2));
    let action = client.begin_action();
    let group = counter.activate(action, 1).expect("activate from n4");
    assert_eq!(group.servers, vec![n(3)]);
    assert_eq!(counter.invoke(action, CounterOp::Get).expect("read"), 42);
    client.commit(action).expect("commit");
}

#[test]
fn sv_growth_is_refused_while_clients_use_the_object() {
    // "without causing inconsistencies to current users": under the
    // standard scheme the users' read locks refuse the Insert; under the
    // updating schemes the non-empty use lists do.
    for scheme in [BindingScheme::Standard, BindingScheme::IndependentTopLevel] {
        let (sys, uid) = build(scheme);
        let user = sys.client(n(5));
        let action = user.begin_action();
        let _group = user.activate(action, uid, 2).expect("activate");
        let err = add_server(&sys, uid, n(3)).expect_err("must be refused in use");
        match scheme {
            BindingScheme::Standard => assert!(err.is_lock_refused(), "{scheme}: {err}"),
            _ => assert!(
                err.is_lock_refused() || matches!(err, DbError::NotQuiescent(_)),
                "{scheme}: {err}"
            ),
        }
        user.commit(action).expect("commit");
        if scheme.maintains_use_lists() {
            // Bindings completed — now quiescent.
            assert!(sys.naming().server_db.entry(uid).unwrap().is_quiescent());
        }
        add_server(&sys, uid, n(3)).expect("succeeds once quiescent");
    }
}

#[test]
fn shrinking_sv_by_remove_hides_a_server_from_new_bindings() {
    let (sys, uid) = build(BindingScheme::Standard);
    let action = sys.tx().begin_top(n(0));
    assert!(sys.naming().server_db.remove(action, uid, n(2)).unwrap());
    sys.tx().commit(action).unwrap();
    let client = sys.client(n(5));
    let a = client.begin_action();
    let group = client.activate(a, uid, 2).expect("activate");
    assert_eq!(group.servers, vec![n(1)], "removed server not offered");
    client.commit(a).expect("commit");
}

#[test]
fn cached_scheme_changes_degree_without_any_refusal() {
    let (sys, uid) = build(BindingScheme::CachedNameServer);
    let user = sys.client(n(5));
    let action = user.begin_action();
    let _group = user.activate(action, uid, 2).expect("activate");
    // The §5 extension: membership updates cannot be refused, even mid-use.
    let cache = sys.server_cache().expect("cache").local();
    assert!(cache.record_server(uid, n(3)));
    assert_eq!(cache.read(uid), vec![n(1), n(2), n(3)]);
    user.commit(action).expect("commit");
    // New activations see the wider candidate set once passive again.
    assert!(sys.try_passivate(uid));
    sys.sim().crash(n(1));
    let a = user.begin_action();
    let group = user.activate(a, uid, 3).expect("bind via cache");
    assert_eq!(group.servers, vec![n(2), n(3)], "new server offered");
    user.abort(a);
}
