//! Cross-scheme equivalence: all four database access schemes must agree on
//! the *outcome* of the same logical workload — they differ only in how the
//! binding metadata is maintained.

use groupview::{BindingScheme, Counter, CounterOp, NodeId, ReplicationPolicy, System, Uid};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn build(scheme: BindingScheme, policy: ReplicationPolicy) -> (System, Uid) {
    let sys = System::builder(101)
        .nodes(7)
        .scheme(scheme)
        .policy(policy)
        .build();
    let uid = sys
        .create_object(
            Box::new(Counter::new(0)),
            &[n(1), n(2), n(3)],
            &[n(1), n(2), n(3)],
        )
        .expect("create");
    (sys, uid)
}

/// Why a workload round failed: `true` means failure-caused per the error
/// taxonomy (`ActivateError`/`InvokeError`/`CommitError::is_failure_caused`).
struct RoundError(bool);

/// Runs the same deterministic sequence of actions (with a crash and a
/// recovery in the middle) and returns the final committed value.
///
/// Causal assertion instead of a seed-sensitive commit floor: this workload
/// has **one** client, so lock contention is impossible — any abort must be
/// attributed to the injected crash by the error taxonomy.
fn run_workload(sys: &System, uid: Uid) -> i64 {
    let client = sys.client(n(5));
    let counter = client.open::<Counter>(uid);
    let mut expected = 0i64;
    for round in 0..12 {
        if round == 4 {
            sys.sim().crash(n(2));
        }
        if round == 8 {
            sys.recovery().recover_node(n(2));
        }
        let action = client.begin_action();
        let worked = (|| -> Result<(), RoundError> {
            counter
                .activate(action, 2)
                .map_err(|e| RoundError(e.is_failure_caused()))?;
            counter
                .invoke(action, CounterOp::Add(round))
                .map_err(|e| RoundError(e.is_failure_caused()))?;
            client
                .commit(action)
                .map_err(|e| RoundError(e.is_failure_caused()))
        })();
        match worked {
            Ok(()) => expected += round,
            Err(RoundError(failure_caused)) => {
                assert!(
                    failure_caused,
                    "round {round}: a single-client abort must be failure-caused, \
                     not contention"
                );
                client.abort(action);
            }
        }
    }
    // Read back through a fresh client on another node.
    let reader = sys.client(n(6));
    let counter = reader.open::<Counter>(uid);
    let action = reader.begin_action();
    counter
        .activate_read_only(action, 1)
        .expect("read activate");
    let value = counter.invoke(action, CounterOp::Get).expect("read");
    reader.commit(action).expect("read commit");
    assert_eq!(value, expected, "committed value must match the model");
    value
}

#[test]
fn all_schemes_agree_on_outcomes_active() {
    let mut results = Vec::new();
    for scheme in BindingScheme::ALL {
        let (sys, uid) = build(scheme, ReplicationPolicy::Active);
        let value = run_workload(&sys, uid);
        assert!(sys.tx().locks_empty(), "{scheme}: locks left behind");
        // Causal, not seed-dependent: active replication with a surviving
        // replica must mask the crash, so *every* round commits.
        assert_eq!(
            value,
            (0..12).sum::<i64>(),
            "{scheme}: the crash was not masked"
        );
        results.push((scheme, value));
    }
    // Every scheme commits exactly the same sequence (the workload is
    // deterministic and failures identical), so values match across
    // schemes too.
    let first = results[0].1;
    for (scheme, value) in &results {
        assert_eq!(*value, first, "{scheme} diverged");
    }
}

#[test]
fn all_schemes_agree_on_outcomes_single_copy() {
    for scheme in BindingScheme::ALL {
        let (sys, uid) = build(scheme, ReplicationPolicy::SingleCopyPassive);
        run_workload(&sys, uid);
        assert!(sys.tx().locks_empty(), "{scheme}: locks left behind");
    }
}

#[test]
fn updating_schemes_leave_quiescent_use_lists() {
    for scheme in [
        BindingScheme::IndependentTopLevel,
        BindingScheme::NestedTopLevel,
    ] {
        let (sys, uid) = build(scheme, ReplicationPolicy::Active);
        run_workload(&sys, uid);
        let entry = sys.naming().server_db.entry(uid).expect("entry");
        assert!(entry.is_quiescent(), "{scheme}: {entry}");
    }
}

#[test]
fn cached_scheme_never_touches_server_db_locks() {
    let (sys, uid) = build(BindingScheme::CachedNameServer, ReplicationPolicy::Active);
    let stats_before = sys.naming().server_db.ops();
    run_workload(&sys, uid);
    let stats_after = sys.naming().server_db.ops();
    assert_eq!(
        stats_before.get_server, stats_after.get_server,
        "cached scheme must not consult the transactional server db"
    );
    // The cache itself served the lookups.
    let (reads, _updates) = sys.server_cache().expect("cache").local().stats();
    assert!(reads > 0);
}

#[test]
fn scheme_metadata_is_consistent() {
    for scheme in BindingScheme::ALL {
        // Use lists and the cache are mutually exclusive mechanisms.
        assert!(
            !(scheme.maintains_use_lists() && scheme.uses_server_cache()),
            "{scheme}"
        );
    }
}
